package sim

import (
	"context"

	"testing"

	"repro/internal/trace"
)

// barrierStream builds a stream of `iters` iterations, each `work` cycles
// of cache-resident computation followed by a barrier. scratch gives each
// thread a private resident line.
func barrierStream(scratch uint64, iters int, work uint32) trace.Stream {
	var refs []trace.Ref
	for i := 0; i < iters; i++ {
		refs = append(refs, trace.Ref{Addr: scratch, Kind: trace.Load, Work: work})
		refs = append(refs, trace.Ref{Sync: true})
	}
	return trace.FromSlice(refs)
}

func TestBarrierSynchronizesUnevenThreads(t *testing.T) {
	// Thread 0 does 10x the work per iteration; thread 1 must wait at every
	// barrier and accumulate sync stall ~= the difference.
	spec := testSpec()
	res, err := Run(context.Background(), Config{Spec: spec, Threads: 2, Cores: 2}, []trace.Stream{
		barrierStream(0, 5, 1000),
		barrierStream(1<<20, 5, 100),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Aborted {
		t.Fatal("aborted")
	}
	fast := res.PerThread[1]
	slow := res.PerThread[0]
	if fast.SyncStall == 0 {
		t.Error("fast thread accumulated no sync stall")
	}
	if slow.SyncStall > fast.SyncStall/2 {
		t.Errorf("slow thread sync stall %d should be far below fast thread's %d",
			slow.SyncStall, fast.SyncStall)
	}
	// Expect roughly 5 * 900 cycles of waiting for the fast thread.
	if fast.SyncStall < 4000 || fast.SyncStall > 6500 {
		t.Errorf("fast thread sync stall = %d, want ~4500", fast.SyncStall)
	}
	// Sync stall is excluded from the cycle counters (blocking barrier):
	// both threads retire the same work, so their Cycles must be close
	// despite the waiting.
	if fast.Cycles() > slow.Cycles() {
		t.Errorf("fast thread cycles %d exceed slow thread's %d — barrier wait leaked into cycles",
			fast.Cycles(), slow.Cycles())
	}
}

func TestBarrierFinishedThreadsDoNotDeadlock(t *testing.T) {
	// Thread 0 has fewer barriers than thread 1: once it finishes, its
	// absence must not block thread 1's remaining barriers.
	spec := testSpec()
	res, err := Run(context.Background(), Config{Spec: spec, Threads: 2, Cores: 2}, []trace.Stream{
		barrierStream(0, 2, 100),
		barrierStream(1<<20, 6, 100),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Aborted {
		t.Fatal("run did not complete")
	}
	for i, th := range res.PerThread {
		if th.Finish == 0 {
			t.Errorf("thread %d never finished", i)
		}
	}
}

func TestBarrierWithOversubscription(t *testing.T) {
	// 4 threads on 1 core: a thread waiting at a barrier must yield the
	// core so its siblings can reach the barrier too (otherwise deadlock).
	spec := testSpec()
	streams := make([]trace.Stream, 4)
	for i := range streams {
		streams[i] = barrierStream(uint64(i)<<22, 8, 200)
	}
	res, err := Run(context.Background(), Config{Spec: spec, Threads: 4, Cores: 1, Quantum: 100000}, streams)
	if err != nil {
		t.Fatal(err)
	}
	if res.Aborted {
		t.Fatal("oversubscribed barrier run deadlocked")
	}
	if res.SyncStallCycles == 0 {
		t.Error("expected some sync stall")
	}
}

func TestBarrierKeepsThreadsInLockstep(t *testing.T) {
	// With barriers, per-iteration miss bursts from all threads must
	// cluster in time. Build threads whose per-iteration phase has
	// different length but identical barrier structure, record miss times,
	// and check that misses from different threads interleave closely.
	spec := testSpec()
	var missTimes []uint64
	mkStream := func(t int) trace.Stream {
		var refs []trace.Ref
		for i := 0; i < 6; i++ {
			// Cache-resident compute whose length differs per thread.
			refs = append(refs, trace.Ref{Addr: uint64(t) << 22, Kind: trace.Load, Work: uint32(500 + 300*t)})
			// One fresh off-chip miss per iteration per thread.
			refs = append(refs, trace.Ref{Addr: uint64(t)<<30 | uint64(i)<<12, Kind: trace.Load, Work: 1})
			refs = append(refs, trace.Ref{Sync: true})
		}
		return trace.FromSlice(refs)
	}
	_, err := Run(context.Background(), Config{
		Spec: spec, Threads: 4, Cores: 4,
		MissHook: func(now uint64, core int) { missTimes = append(missTimes, now) },
	}, []trace.Stream{mkStream(0), mkStream(1), mkStream(2), mkStream(3)})
	if err != nil {
		t.Fatal(err)
	}
	// 4 threads x 6 iterations x 1 fresh miss (plus cold scratch misses).
	if len(missTimes) < 24 {
		t.Fatalf("only %d misses recorded", len(missTimes))
	}
	// The slowest thread's iteration takes ~1400+ cycles; without barriers
	// thread 0 (500/iter) would finish all its misses long before thread 3
	// started its later iterations. With barriers, the per-iteration bursts
	// cluster: the largest gap between consecutive misses should be on the
	// order of an iteration, and the whole run should span ~6 iterations of
	// the slowest thread.
	span := missTimes[len(missTimes)-1] - missTimes[0]
	if span < 5*1400 {
		t.Errorf("miss span %d too small — threads not iterating together", span)
	}
}

func TestSyncRefCountsAsInstruction(t *testing.T) {
	spec := testSpec()
	res, err := Run(context.Background(), Config{Spec: spec, Threads: 1, Cores: 1}, []trace.Stream{
		trace.FromSlice([]trace.Ref{{Sync: true, Work: 7}}),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.WorkCycles != 7 {
		t.Errorf("work = %d, want 7", res.WorkCycles)
	}
	if res.Instructions != 8 {
		t.Errorf("instructions = %d, want 8", res.Instructions)
	}
	// Single thread: the barrier releases immediately.
	if res.SyncStallCycles != 0 {
		t.Errorf("sync stall = %d, want 0", res.SyncStallCycles)
	}
}
