package sim

import (
	"bytes"
	"context"
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"repro/internal/telemetry"
)

// TestTelemetrySampling checks the sampler's basic geometry: every series
// shares one sample clock at the configured interval, utilizations stay in
// range, and a memory-bound run shows real occupancy.
func TestTelemetrySampling(t *testing.T) {
	cfg := Config{
		Spec: testSpec(), Threads: 4, Cores: 4,
		Observe: &ObserveConfig{Interval: 500},
	}
	res, err := Run(context.Background(), cfg, memBoundStreams(4, 500))
	if err != nil {
		t.Fatal(err)
	}
	rt := res.Telemetry
	if rt == nil {
		t.Fatal("Result.Telemetry nil with Observe set")
	}
	if rt.Interval != 500 {
		t.Errorf("interval = %d, want 500", rt.Interval)
	}
	series := rt.Series()
	// test2x2: 1 inflight + 2 MC occupancy + 2 MC util + 4 core stall.
	if len(series) != 9 {
		t.Fatalf("series count = %d, want 9", len(series))
	}
	n := rt.InFlight.Len()
	if n < 10 {
		t.Fatalf("only %d samples for a %d-cycle run", n, res.Makespan)
	}
	for _, s := range series {
		if s.Len() != n {
			t.Errorf("series %s has %d samples, want %d", s.Name, s.Len(), n)
		}
	}
	for i, tm := range rt.InFlight.T {
		if want := uint64(i+1) * 500; tm != want {
			t.Fatalf("sample %d at t=%d, want %d", i, tm, want)
		}
	}
	// Window utilization books busy time at service start, so a saturated
	// window may exceed 1 by at most service/interval (60/500 here); the
	// long-run mean must still be a true utilization.
	for _, s := range rt.MCUtil {
		for i, v := range s.V {
			if v < 0 || v > 1.12 {
				t.Errorf("%s[%d] = %v, want within [0, 1+60/500]", s.Name, i, v)
			}
		}
		if m := s.Mean(); m > 1.001 {
			t.Errorf("%s mean = %v, want <= 1", s.Name, m)
		}
	}
	// Dependent-load streams keep requests in flight: the mean occupancy
	// over both controllers must be visibly non-zero.
	if occ := rt.MCOccupancy[0].Mean() + rt.MCOccupancy[1].Mean(); occ <= 0 {
		t.Errorf("mean MC occupancy = %v, want > 0 for a memory-bound run", occ)
	}
	// A memory-bound dependent-load run stalls its cores most of the time.
	if frac := rt.CoreStallFrac[0].Mean(); frac < 0.5 {
		t.Errorf("core0 mean stall fraction = %v, want >= 0.5", frac)
	}
}

// TestTelemetryDoesNotPerturb pins the observer's read-only contract:
// every counter of an observed run equals the unobserved run's (only
// Events grows, by exactly the dispatched sample count, and Telemetry is
// attached).
func TestTelemetryDoesNotPerturb(t *testing.T) {
	mk := func(obs *ObserveConfig) Result {
		res, err := Run(context.Background(), Config{Spec: testSpec(), Threads: 4, Cores: 4, Observe: obs},
			randomStreams(3, 4, 3000))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	plain := mk(nil)
	observed := mk(&ObserveConfig{Interval: 777})
	// Every recorded sample plus the one terminal (unrecorded) tick is a
	// dispatched event; nothing else may change.
	samples := uint64(observed.Telemetry.InFlight.Len())
	if observed.Events != plain.Events+samples+1 {
		t.Errorf("Events = %d, want %d + %d samples + 1 terminal tick",
			observed.Events, plain.Events, samples)
	}
	observed.Events = plain.Events
	observed.Telemetry = nil
	if !reflect.DeepEqual(plain, observed) {
		t.Errorf("observation perturbed the run:\nplain:    %+v\nobserved: %+v", plain, observed)
	}
}

// TestTelemetryUMABusSeries checks bus utilization series appear on UMA
// machines.
func TestTelemetryUMABusSeries(t *testing.T) {
	res, err := Run(context.Background(), Config{Spec: umaSpec(), Threads: 4, Cores: 4,
		Observe: &ObserveConfig{Interval: 500}}, memBoundStreams(4, 300))
	if err != nil {
		t.Fatal(err)
	}
	rt := res.Telemetry
	if len(rt.BusUtil) != 2 {
		t.Fatalf("bus series = %d, want 2 (one per socket)", len(rt.BusUtil))
	}
	if rt.BusUtil[0].Mean() <= 0 {
		t.Error("socket-0 bus never utilized in a memory-bound run")
	}
}

// TestTelemetryTraceEvents checks the run-lifecycle NDJSON: run.start and
// run.end frame the run with deterministic attributes.
func TestTelemetryTraceEvents(t *testing.T) {
	emit := func() string {
		var buf bytes.Buffer
		_, err := Run(context.Background(), Config{Spec: testSpec(), Threads: 2, Cores: 2,
			Observe: &ObserveConfig{Interval: 1000, Tracer: telemetry.NewTracer(&buf)}},
			memBoundStreams(2, 200))
		if err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	out := emit()
	if out != emit() {
		t.Fatal("trace output not deterministic across identical runs")
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	var first, last map[string]any
	if err := json.Unmarshal([]byte(lines[0]), &first); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal([]byte(lines[len(lines)-1]), &last); err != nil {
		t.Fatal(err)
	}
	if first["event"] != "run.start" || first["machine"] != "test2x2" {
		t.Errorf("first event = %v, want run.start on test2x2", first)
	}
	if last["event"] != "run.end" || last["offchip"].(float64) != 400 {
		t.Errorf("last event = %v, want run.end with offchip=400", last)
	}
}

// TestTelemetryRegistry checks the live registry handles update during a
// run.
func TestTelemetryRegistry(t *testing.T) {
	reg := telemetry.NewRegistry()
	res, err := Run(context.Background(), Config{Spec: testSpec(), Threads: 2, Cores: 2,
		Observe: &ObserveConfig{Interval: 500, Registry: reg}},
		memBoundStreams(2, 200))
	if err != nil {
		t.Fatal(err)
	}
	want := uint64(res.Telemetry.InFlight.Len())
	if got := reg.Counter("sim_samples_total").Value(); got != want {
		t.Errorf("sim_samples_total = %d, want %d", got, want)
	}
	if _, ok := reg.Snapshot()["sim_mc0_util"]; !ok {
		t.Error("sim_mc0_util gauge missing from registry snapshot")
	}
}

// TestTelemetryAllocBound pins the bounded-overhead half of the
// zero-cost contract (the disabled half is TestDispatchLoopAllocationBound
// and eventq's TestZeroAllocSteadyState): with the sampler enabled, the
// marginal allocation cost per sample is bounded by series-append
// amortization — well under two allocations per sample.
func TestTelemetryAllocBound(t *testing.T) {
	spec := testSpec()
	measure := func(refs int) (allocs, samples float64) {
		var n int
		allocs = testing.AllocsPerRun(3, func() {
			res, err := Run(context.Background(), Config{Spec: spec, Threads: 4, Cores: 4,
				Observe: &ObserveConfig{Interval: 200}},
				randomStreams(7, 4, refs))
			if err != nil {
				t.Fatal(err)
			}
			n = res.Telemetry.InFlight.Len()
		})
		return allocs, float64(n)
	}
	smallAllocs, smallSamples := measure(2000)
	largeAllocs, largeSamples := measure(32000)
	extra := largeSamples - smallSamples
	if extra < 100 {
		t.Fatalf("test needs sample growth, got %v -> %v", smallSamples, largeSamples)
	}
	perSample := (largeAllocs - smallAllocs) / extra
	// The marginal cost also includes the page-table growth allowed by
	// TestDispatchLoopAllocationBound; two allocs per sample leaves room
	// for both while still forbidding any per-sample boxing or fmt use.
	if perSample > 2.0 {
		t.Errorf("telemetry allocates %.3f objects per sample (small %.0f, large %.0f), want bounded",
			perSample, smallAllocs, largeAllocs)
	}
}
