// Package sim is the execution-driven multicore simulator: it runs
// per-thread memory-reference streams (internal/trace) on a machine
// description (internal/machine), producing the hardware-counter style
// measurements the paper collects with PAPI — total cycles, work cycles,
// stall cycles, instructions and last-level cache misses — plus memory
// controller and bus statistics.
//
// # Core model
//
// Cores are superscalar-like state machines with MSHR-limited memory-level
// parallelism: a core keeps retiring work and issuing independent off-chip
// requests until either its MSHRs fill or the stream issues a dependent
// load, and then stalls. Stall time therefore includes the queueing delay
// at the memory controllers, which is how contention appears in the
// counters. This matches the paper's observation that the growth in total
// cycles under contention is entirely growth in stall cycles.
//
// # Experiment protocol
//
// Following the paper (section III-A), a run has a fixed number of threads
// (by default one per machine core) executed on a variable number of active
// cores chosen fill-processor-first; threads are pinned round-robin to the
// active cores and multiplexed with a round-robin quantum when the cores
// are oversubscribed. NUMA pages are placed first-touch (or interleaved),
// so data homes onto the controllers of the sockets whose cores touch it.
package sim

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/eventq"
	"repro/internal/machine"
	"repro/internal/memctrl"
	"repro/internal/trace"
)

// Placement selects the NUMA page-placement policy.
type Placement uint8

const (
	// FirstTouch homes each page on a controller local to the socket whose
	// core first touches it (Linux default; what the paper's numactl setup
	// produces for partitioned workloads).
	FirstTouch Placement = iota
	// Interleave round-robins pages across the controllers of all active
	// sockets.
	Interleave
)

// String implements fmt.Stringer.
func (p Placement) String() string {
	switch p {
	case FirstTouch:
		return "first-touch"
	case Interleave:
		return "interleave"
	default:
		return "unknown"
	}
}

// Config parameterizes one simulation run.
type Config struct {
	// Spec is the machine to simulate.
	Spec machine.Spec
	// Threads is the number of program threads; 0 defaults to the machine's
	// total cores (the paper's protocol).
	Threads int
	// Cores is the number of active cores, activated fill-processor-first;
	// 0 defaults to all cores.
	Cores int
	// Quantum is the round-robin time slice in cycles for oversubscribed
	// cores; 0 defaults to 50000.
	Quantum uint64
	// BatchLimit bounds how many cycles a core may advance per simulation
	// event while executing cache hits; 0 defaults to 2000.
	BatchLimit uint64
	// PageBytes is the placement granularity; 0 defaults to 4096.
	PageBytes uint64
	// Placement selects the page-placement policy.
	Placement Placement
	// MissHook, when non-nil, is invoked at every off-chip request with the
	// simulated issue time and the issuing core (used by the burstiness
	// sampler).
	MissHook func(now uint64, core int)
	// MaxCycles aborts the run when the simulated clock passes it; 0 means
	// unlimited.
	MaxCycles uint64
	// Coherence enables the MESI-style invalidation directory: a store to
	// a line cached by another socket invalidates the remote copies, so
	// true- and false-sharing produce real coherence misses. Off by
	// default; the workloads model their barrier coherence traffic
	// synthetically (see internal/workload), which stays accurate without
	// the directory's memory overhead.
	Coherence bool
	// EventQueue selects the discrete-event queue implementation. The
	// default (eventq.Calendar) is the fast bucket queue; eventq.Heap is
	// the binary-heap oracle used by differential and golden tests. Both
	// dispatch events in the identical deterministic order, so results do
	// not depend on this choice.
	EventQueue eventq.Kind
	// CancelEvery is the cancellation-check period: Run polls ctx.Done()
	// every CancelEvery dispatched events, so a cancellation is honored
	// within that many events. 0 defaults to DefaultCancelEvery. The check
	// is a prebuilt non-blocking channel receive, so the event loop stays
	// allocation-free (pinned by TestZeroAllocSteadyState in
	// internal/eventq).
	CancelEvery uint64
	// Observe, when non-nil, attaches the in-run telemetry layer: a
	// simulated-time sampler (utilization, queue occupancy, in-flight
	// requests, per-core stall fraction as time series on
	// Result.Telemetry), structured run tracing and live metrics. nil
	// disables it at zero cost — the steady-state hot path stays
	// allocation-free, pinned by the telemetry alloc tests. Sampling does
	// not perturb the simulation: the sampler only reads engine state, so
	// every counter in Result is identical with and without it (only
	// Result.Events grows by the dispatched sample events).
	Observe *ObserveConfig
}

// ThreadStats are the per-thread counters.
type ThreadStats struct {
	// Work is the number of cycles in which the thread retired computation.
	Work uint64
	// Stall counts all cycles the thread could not retire: cache-hit
	// latency beyond L1, plus off-chip memory waiting.
	Stall uint64
	// MemStall is the subset of Stall spent waiting for off-chip requests
	// (dependent-load waits and MSHR-full waits) — the paper's M(n)+part of
	// B(n).
	MemStall uint64
	// SyncStall is the time spent blocked at barriers. It is NOT part of
	// Stall or Cycles: a blocking barrier deschedules the thread, so its
	// hardware cycle counters do not advance (PAPI semantics).
	SyncStall uint64
	// Instructions approximates retired instructions (one per reference
	// plus one per work cycle).
	Instructions uint64
	// OffChip counts LLC misses issued off-chip by this thread.
	OffChip uint64
	// Remote counts the subset of OffChip served by a non-local controller.
	Remote uint64
	// Finish is the simulated time the thread completed.
	Finish uint64
}

// Cycles returns Work+Stall, the thread's total cycle count.
func (t ThreadStats) Cycles() uint64 { return t.Work + t.Stall }

// Result aggregates one run.
type Result struct {
	// MachineName and Cores/Threads echo the configuration.
	MachineName string
	Threads     int
	Cores       int
	// TotalCycles is the sum over threads of work+stall cycles — the
	// paper's C(n).
	TotalCycles uint64
	// WorkCycles is the summed work cycles W(n).
	WorkCycles uint64
	// StallCycles is the summed stall cycles B(n)+M(n).
	StallCycles uint64
	// MemStallCycles is the summed off-chip waiting time.
	MemStallCycles uint64
	// SyncStallCycles is the summed barrier waiting time (not included in
	// TotalCycles; see ThreadStats.SyncStall).
	SyncStallCycles uint64
	// Instructions is the summed instruction count.
	Instructions uint64
	// LLCMisses is the number of demand misses at the last cache level
	// (equals OffChipRequests).
	LLCMisses uint64
	// OffChipRequests is the number of requests submitted to memory
	// controllers.
	OffChipRequests uint64
	// RemoteRequests is the subset served by remote controllers.
	RemoteRequests uint64
	// Invalidations counts cross-socket copies dropped by the coherence
	// directory (0 unless Config.Coherence).
	Invalidations uint64
	// Makespan is the wall-clock simulated duration in cycles.
	Makespan uint64
	// Events is the number of discrete events the queue dispatched during
	// the run — the denominator-free throughput unit benchmark harnesses
	// report as simulated-events/sec.
	Events uint64
	// Telemetry holds the sampled time series when the run was observed
	// (Config.Observe non-nil), nil otherwise. It is deliberately excluded
	// from JSON so the persistent run cache stays compact and versioned on
	// counters alone.
	Telemetry *RunTelemetry `json:"-"`
	// PerThread has one entry per thread.
	PerThread []ThreadStats
	// MCStats has one entry per memory controller.
	MCStats []memctrl.Stats
	// BusStats has one entry per UMA bus (empty for NUMA machines).
	BusStats []memctrl.Stats
	// Aborted reports that MaxCycles was reached before completion.
	Aborted bool
}

// DefaultCancelEvery is the default cancellation-check period in events:
// the cadence at which Run polls ctx.Done() when CancelEvery is zero.
const DefaultCancelEvery = 4096

// ErrCanceled is the sentinel a canceled run matches via errors.Is. The
// concrete error is always a *CanceledError carrying the partial counters
// accumulated up to the cancellation point.
var ErrCanceled = errors.New("sim: run canceled")

// CanceledError reports that a run was stopped by its context before
// completion. It matches ErrCanceled under errors.Is and unwraps to the
// context's error (context.Canceled or context.DeadlineExceeded).
type CanceledError struct {
	// Partial holds the counters accumulated up to the cancellation point,
	// assembled exactly like an aborted run's (open blocked intervals are
	// charged through the cancel time, Aborted is set). DroppedEvents
	// pending events were discarded without running.
	Partial Result
	// DroppedEvents is the number of pending events drained from the queue
	// at cancellation.
	DroppedEvents int
	cause         error
}

// Error implements error.
func (e *CanceledError) Error() string {
	return fmt.Sprintf("sim: run canceled after %d events (%v)", e.Partial.Events, e.cause)
}

// Is reports a match against the ErrCanceled sentinel.
func (e *CanceledError) Is(target error) bool { return target == ErrCanceled }

// Unwrap returns the context's error, so errors.Is(err, context.Canceled)
// also holds.
func (e *CanceledError) Unwrap() error { return e.cause }

// Run executes streams (one per thread) on the configured machine and
// returns the measured counters.
//
// Run honors ctx: the event loop polls ctx.Done() every
// Config.CancelEvery dispatched events (a prebuilt non-blocking receive,
// so the hot path stays allocation-free), and on cancellation drains the
// queue — releasing pooled callbacks — and returns a *CanceledError
// carrying the partial counters. Use context.Background() for an
// uncancellable run; its nil Done channel skips the checks entirely.
//
// Configuration errors are reported as a *ConfigError (matching
// ErrBadConfig) naming every invalid field at once.
func Run(ctx context.Context, cfg Config, streams []trace.Stream) (Result, error) {
	cfg.applyDefaults()
	if err := cfg.validate(len(streams)); err != nil {
		return Result{}, err
	}

	q := eventq.New(cfg.EventQueue)
	m, err := machine.Build(cfg.Spec, q)
	if err != nil {
		return Result{}, err
	}
	e := newEngine(cfg, m, q)
	for i, s := range streams {
		e.addThread(i, s)
	}

	// Telemetry attaches outside the hot path: a nil Observe leaves the
	// engine exactly as built, with no hooks installed anywhere.
	var obs *observer
	if cfg.Observe != nil {
		obs = newObserver(e, cfg.Observe)
		attachQueueTracing(q, cfg.Observe.Tracer)
		cfg.Observe.Tracer.Emit("run.start",
			"machine", cfg.Spec.Name, "threads", cfg.Threads, "cores", cfg.Cores,
			"placement", cfg.Placement.String(), "sample_interval", obs.interval)
	}

	e.start()
	if obs != nil {
		obs.start()
	}

	// The cancellation probe is built once, outside the event loop. A
	// context that can never be canceled (context.Background) has a nil
	// Done channel, in which case the unchecked loops run instead and the
	// per-event cost of cancellation support is exactly zero.
	done := ctx.Done()
	canceled := false
	check := func() bool {
		select {
		case <-done:
			canceled = true
			return false
		default:
			return true
		}
	}

	switch {
	case obs != nil:
		canceled = !obs.drive(cfg.MaxCycles, cfg.CancelEvery, done, check)
	case cfg.MaxCycles > 0:
		var n uint64
		q.RunWhile(func() bool {
			if q.Now() >= cfg.MaxCycles {
				return false
			}
			if done != nil {
				if n++; n >= cfg.CancelEvery {
					n = 0
					return check()
				}
			}
			return true
		})
	case done != nil:
		q.RunChecked(cfg.CancelEvery, check)
	default:
		q.Run()
	}
	defer trace.StopAll(streams...)

	if canceled {
		dropped := q.Drain()
		partial := e.result()
		if obs != nil {
			partial.Telemetry = obs.rt
			cfg.Observe.Tracer.Emit("run.cancel",
				"machine", cfg.Spec.Name, "cores", cfg.Cores,
				"cycles", partial.Makespan, "events", partial.Events,
				"dropped", dropped)
		}
		return Result{}, &CanceledError{Partial: partial, DroppedEvents: dropped, cause: ctx.Err()}
	}

	res := e.result()
	if obs != nil {
		if obs.endSet {
			// The terminal sampler tick fired after the run's last real
			// event; report the makespan the unobserved run would have.
			res.Makespan = obs.realEnd
		}
		res.Telemetry = obs.rt
		cfg.Observe.Tracer.Emit("run.end",
			"machine", cfg.Spec.Name, "cores", cfg.Cores,
			"makespan", res.Makespan, "events", res.Events,
			"offchip", res.OffChipRequests, "samples", obs.rt.InFlight.Len(),
			"aborted", res.Aborted)
	}
	return res, nil
}
