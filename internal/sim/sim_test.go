package sim

import (
	"context"

	"testing"

	"repro/internal/cache"
	"repro/internal/machine"
	"repro/internal/memctrl"
	"repro/internal/trace"
)

// testSpec returns a tiny 2-socket NUMA machine for fast tests.
func testSpec() machine.Spec {
	return machine.Spec{
		Name:           "test2x2",
		Sockets:        2,
		CoresPerSocket: 2,
		ClockGHz:       1.0,
		Levels: []machine.CacheLevel{
			{Config: cache.Config{Name: "L1", Size: 1 << 10, Line: 64, Ways: 2, Latency: 2}, Scope: machine.PerCore},
			{Config: cache.Config{Name: "L2", Size: 8 << 10, Line: 64, Ways: 4, Latency: 10}, Scope: machine.PerSocket},
		},
		MCsPerSocket: 1,
		MC: memctrl.Config{
			Channels: 1, Banks: 4, RowBytes: 2048, LineBytes: 64,
			HitLatency: 20, MissLatency: 60, Discipline: memctrl.FCFS,
		},
		HopLatency: 50,
		Links:      [][2]int{{0, 1}},
		MSHRs:      4,
	}
}

// umaSpec returns a tiny UMA machine with per-socket buses.
func umaSpec() machine.Spec {
	s := testSpec()
	s.Name = "testUMA"
	s.MCsPerSocket = 0
	s.Links = nil
	s.HopLatency = 0
	s.Bus = &machine.BusConfig{Occupancy: 8}
	return s
}

func singleStream(refs []trace.Ref) []trace.Stream {
	return []trace.Stream{trace.FromSlice(refs)}
}

func TestRunConfigValidation(t *testing.T) {
	spec := testSpec()
	if _, err := Run(context.Background(), Config{Spec: spec, Threads: 1, Cores: 99}, singleStream(nil)); err == nil {
		t.Error("out-of-range cores accepted")
	}
	if _, err := Run(context.Background(), Config{Spec: spec, Threads: 2, Cores: 1}, singleStream(nil)); err == nil {
		t.Error("stream/thread mismatch accepted")
	}
	bad := spec
	bad.MSHRs = 0
	if _, err := Run(context.Background(), Config{Spec: bad, Threads: 1, Cores: 1}, singleStream(nil)); err == nil {
		t.Error("invalid machine accepted")
	}
}

func TestEmptyStreamsFinish(t *testing.T) {
	spec := testSpec()
	res, err := Run(context.Background(), Config{Spec: spec}, []trace.Stream{
		trace.FromSlice(nil), trace.FromSlice(nil), trace.FromSlice(nil), trace.FromSlice(nil),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Aborted {
		t.Error("empty run aborted")
	}
	if res.TotalCycles != 0 || res.OffChipRequests != 0 {
		t.Errorf("nonzero counters: %+v", res)
	}
}

func TestPureWorkAccounting(t *testing.T) {
	// 100 refs to one line, 10 work cycles each: one cold off-chip miss,
	// then 99 L1 hits with zero stall.
	var refs []trace.Ref
	for i := 0; i < 100; i++ {
		refs = append(refs, trace.Ref{Addr: 4096, Kind: trace.Load, Work: 10})
	}
	res, err := Run(context.Background(), Config{Spec: testSpec(), Threads: 1, Cores: 1}, singleStream(refs))
	if err != nil {
		t.Fatal(err)
	}
	if res.WorkCycles != 1000 {
		t.Errorf("work = %d, want 1000", res.WorkCycles)
	}
	if res.OffChipRequests != 1 || res.LLCMisses != 1 {
		t.Errorf("off-chip = %d, llc = %d, want 1", res.OffChipRequests, res.LLCMisses)
	}
	if res.Instructions != 100+1000 {
		t.Errorf("instructions = %d", res.Instructions)
	}
	// Stall: cache traversal of the single miss (2+10=12). The miss is
	// independent (Dep=false) so the MC wait is overlapped, not stalled.
	if res.MemStallCycles != 0 {
		t.Errorf("mem stall = %d, want 0 for a single independent miss", res.MemStallCycles)
	}
	if res.TotalCycles != res.WorkCycles+res.StallCycles {
		t.Error("cycle identity violated")
	}
}

func TestDependentMissStalls(t *testing.T) {
	// A dependent cold miss must stall for at least the MC service time.
	refs := []trace.Ref{{Addr: 1 << 20, Kind: trace.Load, Dep: true, Work: 1}}
	res, err := Run(context.Background(), Config{Spec: testSpec(), Threads: 1, Cores: 1}, singleStream(refs))
	if err != nil {
		t.Fatal(err)
	}
	if res.MemStallCycles < 60 {
		t.Errorf("mem stall = %d, want >= 60 (MC miss service)", res.MemStallCycles)
	}
	if res.PerThread[0].OffChip != 1 {
		t.Errorf("off-chip = %d", res.PerThread[0].OffChip)
	}
}

func TestMLPBeatsDependentChain(t *testing.T) {
	// Equal miss counts; the dependent chain must take far longer than the
	// independent stream that exploits MSHRs.
	mkRefs := func(dep bool) []trace.Ref {
		var refs []trace.Ref
		for i := 0; i < 200; i++ {
			// Stride 4096+64 so consecutive requests rotate across the
			// controller's channels instead of aliasing onto one.
			refs = append(refs, trace.Ref{Addr: uint64(i) * 4160, Kind: trace.Load, Dep: dep, Work: 1})
		}
		return refs
	}
	// Plenty of channels so the comparison is latency- vs overlap-bound,
	// not bandwidth-bound.
	spec := testSpec()
	spec.MC.Channels = 4
	dep, err := Run(context.Background(), Config{Spec: spec, Threads: 1, Cores: 1}, singleStream(mkRefs(true)))
	if err != nil {
		t.Fatal(err)
	}
	indep, err := Run(context.Background(), Config{Spec: spec, Threads: 1, Cores: 1}, singleStream(mkRefs(false)))
	if err != nil {
		t.Fatal(err)
	}
	if dep.OffChipRequests != indep.OffChipRequests {
		t.Fatalf("miss counts differ: %d vs %d", dep.OffChipRequests, indep.OffChipRequests)
	}
	if indep.TotalCycles*2 > dep.TotalCycles {
		t.Errorf("independent %d cycles vs dependent %d: MLP should be at least 2x faster",
			indep.TotalCycles, dep.TotalCycles)
	}
}

func TestEveryRefMissesWhenFootprintHuge(t *testing.T) {
	refs := trace.Collect(trace.StrideSpec{Base: 0, Stride: 4096, Count: 500, Kind: trace.Load, Work: 2}.Stream(), 0)
	res, err := Run(context.Background(), Config{Spec: testSpec(), Threads: 1, Cores: 1}, singleStream(refs))
	if err != nil {
		t.Fatal(err)
	}
	if res.OffChipRequests != 500 {
		t.Errorf("off-chip = %d, want 500", res.OffChipRequests)
	}
	if res.LLCMisses != 500 {
		t.Errorf("LLC misses = %d, want 500", res.LLCMisses)
	}
}

// memBoundStreams builds T streams of dependent loads over disjoint
// regions, all missing.
func memBoundStreams(threads, missesEach int) []trace.Stream {
	var streams []trace.Stream
	for t := 0; t < threads; t++ {
		base := uint64(t) << 30
		streams = append(streams, trace.StrideSpec{
			Base: base, Stride: 4096, Count: missesEach, Kind: trace.Load, Dep: true, Work: 2,
		}.Stream())
	}
	return streams
}

func TestContentionGrowsTotalCycles(t *testing.T) {
	// Same total work, more active cores sharing one socket's MC: queueing
	// makes total (summed) cycles grow — the paper's core observation.
	spec := testSpec()
	run := func(cores int) Result {
		res, err := Run(context.Background(), Config{Spec: spec, Threads: 2, Cores: cores}, memBoundStreams(2, 400))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	c1 := run(1)
	c2 := run(2)
	if c2.TotalCycles <= c1.TotalCycles {
		t.Errorf("C(2)=%d should exceed C(1)=%d under contention", c2.TotalCycles, c1.TotalCycles)
	}
	// Work cycles must be (nearly) independent of core count.
	if c1.WorkCycles != c2.WorkCycles {
		t.Errorf("work cycles changed: %d vs %d", c1.WorkCycles, c2.WorkCycles)
	}
	// Miss counts must be (nearly) independent of core count.
	if c1.OffChipRequests != c2.OffChipRequests {
		t.Errorf("off-chip changed: %d vs %d", c1.OffChipRequests, c2.OffChipRequests)
	}
	// But wall-clock should still improve with parallelism.
	if c2.Makespan >= c1.Makespan {
		t.Errorf("makespan did not improve: %d vs %d", c2.Makespan, c1.Makespan)
	}
}

func TestFirstTouchKeepsAccessesLocal(t *testing.T) {
	// Threads pinned on socket 0 only; first-touch places pages on MC 0:
	// zero remote requests.
	spec := testSpec()
	res, err := Run(context.Background(), Config{Spec: spec, Threads: 2, Cores: 2}, memBoundStreams(2, 100))
	if err != nil {
		t.Fatal(err)
	}
	if res.RemoteRequests != 0 {
		t.Errorf("remote = %d, want 0 for single-socket first-touch", res.RemoteRequests)
	}
	if res.MCStats[1].Requests != 0 {
		t.Errorf("MC1 served %d requests, want 0", res.MCStats[1].Requests)
	}
}

func TestInterleaveUsesAllActiveMCs(t *testing.T) {
	spec := testSpec()
	res, err := Run(context.Background(), Config{
		Spec: spec, Threads: 4, Cores: 4, Placement: Interleave,
	}, memBoundStreams(4, 100))
	if err != nil {
		t.Fatal(err)
	}
	if res.MCStats[0].Requests == 0 || res.MCStats[1].Requests == 0 {
		t.Errorf("interleave left an MC idle: %+v", res.MCStats)
	}
	if res.RemoteRequests == 0 {
		t.Error("interleave across sockets should produce remote requests")
	}
}

func TestSecondSocketAddsRemoteTraffic(t *testing.T) {
	// 4 threads on 4 cores (both sockets, first-touch): threads on socket 1
	// home their pages on MC 1 and everything stays local; verify instead
	// that socket-1 MC actually serves requests (fill-first activation).
	spec := testSpec()
	res, err := Run(context.Background(), Config{Spec: spec, Threads: 4, Cores: 4}, memBoundStreams(4, 100))
	if err != nil {
		t.Fatal(err)
	}
	if res.MCStats[1].Requests == 0 {
		t.Error("second socket's MC idle despite active cores")
	}
}

func TestOversubscriptionCompletes(t *testing.T) {
	// 4 threads on 1 core: round-robin multiplexing must finish all threads
	// and count each thread's misses.
	spec := testSpec()
	res, err := Run(context.Background(), Config{Spec: spec, Threads: 4, Cores: 1, Quantum: 500}, memBoundStreams(4, 50))
	if err != nil {
		t.Fatal(err)
	}
	if res.Aborted {
		t.Fatal("aborted")
	}
	for i, th := range res.PerThread {
		if th.OffChip != 50 {
			t.Errorf("thread %d off-chip = %d, want 50", i, th.OffChip)
		}
		if th.Finish == 0 {
			t.Errorf("thread %d has no finish time", i)
		}
	}
}

func TestUMABusPath(t *testing.T) {
	spec := umaSpec()
	res, err := Run(context.Background(), Config{Spec: spec, Threads: 4, Cores: 4}, memBoundStreams(4, 100))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.BusStats) != 2 {
		t.Fatalf("bus stats = %d entries", len(res.BusStats))
	}
	if res.BusStats[0].Requests == 0 || res.BusStats[1].Requests == 0 {
		t.Errorf("buses idle: %+v", res.BusStats)
	}
	if res.RemoteRequests != 0 {
		t.Errorf("UMA should have no remote requests, got %d", res.RemoteRequests)
	}
	if res.MCStats[0].Requests != res.OffChipRequests {
		t.Errorf("MC served %d of %d requests", res.MCStats[0].Requests, res.OffChipRequests)
	}
}

func TestMaxCyclesAborts(t *testing.T) {
	spec := testSpec()
	res, err := Run(context.Background(), Config{Spec: spec, Threads: 1, Cores: 1, MaxCycles: 100},
		singleStream(trace.Collect(trace.StrideSpec{Stride: 4096, Count: 100000, Dep: true, Work: 1}.Stream(), 0)))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Aborted {
		t.Error("run should abort at MaxCycles")
	}
}

func TestMissHookMonotone(t *testing.T) {
	var times []uint64
	var cores []int
	spec := testSpec()
	_, err := Run(context.Background(), Config{
		Spec: spec, Threads: 2, Cores: 2,
		MissHook: func(now uint64, core int) {
			times = append(times, now)
			cores = append(cores, core)
		},
	}, memBoundStreams(2, 50))
	if err != nil {
		t.Fatal(err)
	}
	if len(times) != 100 {
		t.Fatalf("hook fired %d times, want 100", len(times))
	}
	for i := 1; i < len(times); i++ {
		if times[i] < times[i-1] {
			t.Fatal("hook times not monotone")
		}
	}
	seen := map[int]bool{}
	for _, c := range cores {
		seen[c] = true
	}
	if !seen[0] || !seen[1] {
		t.Errorf("hook cores = %v", seen)
	}
}

func TestMSHRLimitBlocks(t *testing.T) {
	// Independent misses beyond the MSHR count must still finish, and with
	// MSHRs=1 the behavior approaches the dependent chain.
	spec := testSpec()
	spec.MSHRs = 1
	refs := trace.Collect(trace.StrideSpec{Stride: 4096, Count: 100, Kind: trace.Load, Work: 1}.Stream(), 0)
	res1, err := Run(context.Background(), Config{Spec: spec, Threads: 1, Cores: 1}, singleStream(refs))
	if err != nil {
		t.Fatal(err)
	}
	spec.MSHRs = 8
	refs = trace.Collect(trace.StrideSpec{Stride: 4096, Count: 100, Kind: trace.Load, Work: 1}.Stream(), 0)
	res8, err := Run(context.Background(), Config{Spec: spec, Threads: 1, Cores: 1}, singleStream(refs))
	if err != nil {
		t.Fatal(err)
	}
	if res1.MemStallCycles <= res8.MemStallCycles {
		t.Errorf("MSHRs=1 stall %d should exceed MSHRs=8 stall %d",
			res1.MemStallCycles, res8.MemStallCycles)
	}
	if res1.Aborted || res8.Aborted {
		t.Error("runs aborted")
	}
}

func TestDefaultsApplied(t *testing.T) {
	spec := testSpec()
	streams := memBoundStreams(spec.TotalCores(), 10)
	res, err := Run(context.Background(), Config{Spec: spec}, streams)
	if err != nil {
		t.Fatal(err)
	}
	if res.Threads != 4 || res.Cores != 4 {
		t.Errorf("defaults: threads=%d cores=%d", res.Threads, res.Cores)
	}
}

func TestPlacementString(t *testing.T) {
	if FirstTouch.String() != "first-touch" || Interleave.String() != "interleave" || Placement(7).String() != "unknown" {
		t.Error("placement strings wrong")
	}
}

func TestSMTSiblingSharingSlowsWork(t *testing.T) {
	// A 1-socket, 4-logical-core machine with SMT=2: logical cores (0,2)
	// and (1,3) share physical cores. Two compute-bound threads placed on
	// sibling cores must each accrue ~55% extra cycles as stall.
	spec := testSpec()
	spec.Sockets = 1
	spec.CoresPerSocket = 4
	spec.MCsPerSocket = 1
	spec.Links = nil
	spec.SMT = 2

	workRefs := func(scratch uint64) trace.Stream {
		var refs []trace.Ref
		for i := 0; i < 100; i++ {
			refs = append(refs, trace.Ref{Addr: scratch, Kind: trace.Load, Work: 100})
		}
		return trace.FromSlice(refs)
	}

	// Threads 0 and 2 -> cores 0 and 2 = SMT siblings.
	res, err := Run(context.Background(), Config{Spec: spec, Threads: 4, Cores: 4}, []trace.Stream{
		workRefs(0), trace.FromSlice(nil), workRefs(1 << 20), trace.FromSlice(nil),
	})
	if err != nil {
		t.Fatal(err)
	}
	th0 := res.PerThread[0]
	slowdown := float64(th0.Cycles()) / float64(th0.Work)
	if slowdown < 1.4 || slowdown > 1.7 {
		t.Errorf("SMT slowdown = %.2f, want ~1.55", slowdown)
	}

	// Same run with the threads on non-sibling cores 0 and 1: no slowdown.
	res2, err := Run(context.Background(), Config{Spec: spec, Threads: 4, Cores: 4}, []trace.Stream{
		workRefs(0), workRefs(1 << 20), trace.FromSlice(nil), trace.FromSlice(nil),
	})
	if err != nil {
		t.Fatal(err)
	}
	th0 = res2.PerThread[0]
	slowdown = float64(th0.Cycles()) / float64(th0.Work)
	if slowdown > 1.1 {
		t.Errorf("non-sibling slowdown = %.2f, want ~1", slowdown)
	}
}

func TestSMTSiblingPairing(t *testing.T) {
	spec := testSpec()
	spec.SMT = 2 // 2 sockets x 2 logical cores: pairs (0,1) and (2,3)
	if got := spec.SMTSibling(0); got != 1 {
		t.Errorf("sibling(0) = %d, want 1", got)
	}
	if got := spec.SMTSibling(1); got != 0 {
		t.Errorf("sibling(1) = %d, want 0", got)
	}
	if got := spec.SMTSibling(2); got != 3 {
		t.Errorf("sibling(2) = %d, want 3", got)
	}
	spec.SMT = 1
	if got := spec.SMTSibling(0); got != -1 {
		t.Errorf("no-SMT sibling = %d, want -1", got)
	}
}

func TestSMTValidation(t *testing.T) {
	spec := testSpec()
	spec.SMT = 3
	if _, err := Run(context.Background(), Config{Spec: spec, Threads: 1, Cores: 1}, singleStream(nil)); err == nil {
		t.Error("SMT=3 accepted")
	}
	spec = testSpec()
	spec.SMT = 2
	spec.CoresPerSocket = 3
	if _, err := Run(context.Background(), Config{Spec: spec, Threads: 1, Cores: 1}, singleStream(nil)); err == nil {
		t.Error("odd logical core count with SMT accepted")
	}
}
