package sim

import (
	"context"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/eventq"
	"repro/internal/trace"
)

// randomStreams builds seeded reference streams with a mix of dependent and
// independent loads, stores, hits and misses, plus occasional barriers —
// every scheduling path the engine has.
func randomStreams(seed int64, threads, refsEach int) []trace.Stream {
	rng := rand.New(rand.NewSource(seed))
	streams := make([]trace.Stream, threads)
	for t := 0; t < threads; t++ {
		refs := make([]trace.Ref, 0, refsEach)
		base := uint64(t) << 30
		for i := 0; i < refsEach; i++ {
			switch rng.Intn(20) {
			case 0:
				refs = append(refs, trace.Ref{Sync: true, Work: uint32(rng.Intn(50))})
			default:
				ref := trace.Ref{
					Addr: base + uint64(rng.Intn(1<<16))*64,
					Work: uint32(rng.Intn(8)),
					Dep:  rng.Intn(3) == 0,
				}
				if rng.Intn(4) == 0 {
					ref.Kind = trace.Store
				}
				if rng.Intn(3) == 0 {
					// Far address: likely an off-chip miss.
					ref.Addr = base + uint64(rng.Intn(1<<24))*4096
				}
				refs = append(refs, ref)
			}
		}
		streams[t] = trace.FromSlice(refs)
	}
	return streams
}

// TestCalendarHeapIdenticalResults is the engine-level differential test:
// the full Result (every counter, per-thread and per-controller) must be
// identical whichever event-queue backend dispatched the run.
func TestCalendarHeapIdenticalResults(t *testing.T) {
	for _, spec := range []struct {
		name string
		mk   func() Config
	}{
		{"numa", func() Config { return Config{Spec: testSpec(), Threads: 4, Cores: 4} }},
		{"uma-bus", func() Config { return Config{Spec: umaSpec(), Threads: 4, Cores: 2} }},
		{"oversubscribed", func() Config { return Config{Spec: testSpec(), Threads: 8, Cores: 2, Quantum: 500} }},
		{"interleave", func() Config { return Config{Spec: testSpec(), Threads: 4, Cores: 4, Placement: Interleave} }},
	} {
		t.Run(spec.name, func(t *testing.T) {
			for seed := int64(1); seed <= 5; seed++ {
				cal := spec.mk()
				cal.EventQueue = eventq.Calendar
				resCal, err := Run(context.Background(), cal, randomStreams(seed, cal.Threads, 3000))
				if err != nil {
					t.Fatal(err)
				}
				hp := spec.mk()
				hp.EventQueue = eventq.Heap
				resHeap, err := Run(context.Background(), hp, randomStreams(seed, hp.Threads, 3000))
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(resCal, resHeap) {
					t.Fatalf("seed %d: calendar and heap results diverge:\ncalendar: %+v\nheap:     %+v",
						seed, resCal, resHeap)
				}
			}
		})
	}
}

// TestDispatchLoopAllocationBound pins the zero-alloc contract end to end:
// the marginal cost of simulating more references must be allocation-free.
// Fixed per-run setup (engine, machine, pools, page tables) is measured by
// a small run and subtracted; the extra references of a 16x larger run may
// not add more than a page-table's worth of allocations.
func TestDispatchLoopAllocationBound(t *testing.T) {
	spec := testSpec()
	measure := func(refs int) float64 {
		return testing.AllocsPerRun(3, func() {
			if _, err := Run(context.Background(), Config{Spec: spec, Threads: 4, Cores: 4},
				randomStreams(7, 4, refs)); err != nil {
				t.Fatal(err)
			}
		})
	}
	small := measure(2000)
	large := measure(32000)
	extraRefs := 4 * (32000 - 2000)
	perRef := (large - small) / float64(extraRefs)
	// The only allowed growth is the first-touch page map (one entry per
	// distinct page, amortized across refs) — well under 0.1 allocs/ref.
	// The pre-overhaul engine allocated >3 per off-chip reference.
	if perRef > 0.1 {
		t.Errorf("dispatch loop allocates %.3f objects per reference (small run %.0f, large run %.0f), want ~0",
			perRef, small, large)
	}
}

// TestEventsCounter checks Result.Events reports the dispatched event count.
func TestEventsCounter(t *testing.T) {
	res, err := Run(context.Background(), Config{Spec: testSpec(), Threads: 2, Cores: 2}, memBoundStreams(2, 100))
	if err != nil {
		t.Fatal(err)
	}
	if res.Events == 0 {
		t.Error("Events = 0, want the dispatched event count")
	}
	// Every off-chip request takes at least one event (issue), and the run
	// had 200 of them plus per-core steps.
	if res.Events < res.OffChipRequests {
		t.Errorf("Events = %d < OffChipRequests = %d", res.Events, res.OffChipRequests)
	}
}
