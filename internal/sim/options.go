package sim

import (
	"errors"
	"fmt"
	"strings"

	"repro/internal/eventq"
	"repro/internal/machine"
)

// ErrBadConfig is the sentinel every configuration error matches via
// errors.Is. The concrete error is always a *ConfigError carrying one
// entry per invalid field, so a caller that misconfigures three fields
// learns about all three at once instead of playing whack-a-mole.
var ErrBadConfig = errors.New("sim: bad configuration")

// FieldError names one invalid configuration field and why it is invalid.
type FieldError struct {
	// Field is the Config field name ("Cores", "Threads", …) or the
	// pseudo-field "Streams" for a stream-count/thread-count mismatch.
	Field string
	// Reason is a human-readable description of the violation.
	Reason string
}

func (f FieldError) String() string { return f.Field + ": " + f.Reason }

// ConfigError reports every invalid field of a Config at once. It matches
// ErrBadConfig under errors.Is.
type ConfigError struct {
	Fields []FieldError
}

// Error implements error, listing every invalid field.
func (e *ConfigError) Error() string {
	var b strings.Builder
	b.WriteString("sim: bad configuration: ")
	for i, f := range e.Fields {
		if i > 0 {
			b.WriteString("; ")
		}
		b.WriteString(f.String())
	}
	return b.String()
}

// Is reports a match against the ErrBadConfig sentinel.
func (e *ConfigError) Is(target error) bool { return target == ErrBadConfig }

// Option mutates a Config under construction. Options carry no validation
// of their own: NewConfig (and Run) validate the assembled Config in one
// place and report every violation together.
type Option func(*Config)

// WithThreads sets the number of program threads (0 keeps the default of
// one thread per machine core).
func WithThreads(n int) Option { return func(c *Config) { c.Threads = n } }

// WithCores sets the number of active cores, activated
// fill-processor-first (0 keeps the default of all cores).
func WithCores(n int) Option { return func(c *Config) { c.Cores = n } }

// WithQuantum sets the round-robin time slice in cycles for oversubscribed
// cores.
func WithQuantum(cycles uint64) Option { return func(c *Config) { c.Quantum = cycles } }

// WithBatchLimit bounds how many cycles a core may advance per simulation
// event while executing cache hits.
func WithBatchLimit(cycles uint64) Option { return func(c *Config) { c.BatchLimit = cycles } }

// WithPageBytes sets the NUMA placement granularity.
func WithPageBytes(n uint64) Option { return func(c *Config) { c.PageBytes = n } }

// WithPlacement selects the NUMA page-placement policy.
func WithPlacement(p Placement) Option { return func(c *Config) { c.Placement = p } }

// WithMissHook installs a callback invoked at every off-chip request with
// the simulated issue time and the issuing core.
func WithMissHook(fn func(now uint64, core int)) Option {
	return func(c *Config) { c.MissHook = fn }
}

// WithMaxCycles aborts the run when the simulated clock passes the bound
// (0 means unlimited).
func WithMaxCycles(cycles uint64) Option { return func(c *Config) { c.MaxCycles = cycles } }

// WithCoherence enables the MESI-style invalidation directory.
func WithCoherence(on bool) Option { return func(c *Config) { c.Coherence = on } }

// WithEventQueue selects the discrete-event queue implementation.
func WithEventQueue(k eventq.Kind) Option { return func(c *Config) { c.EventQueue = k } }

// WithObserve attaches the in-run telemetry layer (nil disables it).
func WithObserve(o *ObserveConfig) Option { return func(c *Config) { c.Observe = o } }

// WithCancelEvery sets the cancellation-check period: Run polls
// ctx.Done() every k dispatched events, so cancellation latency is
// bounded by k events. 0 keeps the default (DefaultCancelEvery).
func WithCancelEvery(k uint64) Option { return func(c *Config) { c.CancelEvery = k } }

// NewConfig assembles a validated Config for the given machine from
// functional options. Defaults are applied first (threads and cores
// default to the machine's total cores, the paper's protocol), then every
// option, then validation — returning a *ConfigError naming every invalid
// field if the combination is inconsistent.
func NewConfig(spec machine.Spec, opts ...Option) (Config, error) {
	cfg := Config{Spec: spec}
	for _, opt := range opts {
		opt(&cfg)
	}
	cfg.applyDefaults()
	if err := cfg.validate(-1); err != nil {
		return Config{}, err
	}
	return cfg, nil
}

// applyDefaults fills zero-valued fields with the documented defaults.
func (cfg *Config) applyDefaults() {
	if cfg.Threads == 0 {
		cfg.Threads = cfg.Spec.TotalCores()
	}
	if cfg.Cores == 0 {
		cfg.Cores = cfg.Spec.TotalCores()
	}
	if cfg.Quantum == 0 {
		cfg.Quantum = 50000
	}
	if cfg.BatchLimit == 0 {
		cfg.BatchLimit = 2000
	}
	if cfg.PageBytes == 0 {
		cfg.PageBytes = 4096
	}
	if cfg.CancelEvery == 0 {
		cfg.CancelEvery = DefaultCancelEvery
	}
}

// validate checks the (defaulted) Config and collects every violation.
// nStreams is the number of trace streams the caller supplied, or -1 when
// the streams are not known yet (NewConfig validates before streams
// exist; Run re-validates with the real count).
func (cfg *Config) validate(nStreams int) error {
	var fields []FieldError
	total := cfg.Spec.TotalCores()
	if total < 1 {
		fields = append(fields, FieldError{"Spec", "machine has no cores"})
	}
	if cfg.Threads < 1 {
		fields = append(fields, FieldError{"Threads", fmt.Sprintf("%d, want >= 1", cfg.Threads)})
	}
	if cfg.Cores < 1 || (total >= 1 && cfg.Cores > total) {
		fields = append(fields, FieldError{"Cores", fmt.Sprintf("%d out of range 1..%d", cfg.Cores, total)})
	}
	if cfg.Placement > Interleave {
		fields = append(fields, FieldError{"Placement", fmt.Sprintf("unknown policy %d", cfg.Placement)})
	}
	if cfg.EventQueue > eventq.Heap {
		fields = append(fields, FieldError{"EventQueue", fmt.Sprintf("unknown kind %d", cfg.EventQueue)})
	}
	if nStreams >= 0 && nStreams != cfg.Threads {
		fields = append(fields, FieldError{"Streams", fmt.Sprintf("%d streams for %d threads", nStreams, cfg.Threads)})
	}
	if fields == nil {
		return nil
	}
	return &ConfigError{Fields: fields}
}
