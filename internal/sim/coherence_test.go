package sim

import (
	"context"

	"testing"

	"repro/internal/trace"
)

// pingPongStreams builds two threads that alternately write and read one
// shared line, separated by barriers so the accesses interleave across
// sockets.
func pingPongStreams(rounds int) []trace.Stream {
	shared := uint64(1 << 30)
	mk := func(t int) trace.Stream {
		var refs []trace.Ref
		for i := 0; i < rounds; i++ {
			refs = append(refs, trace.Ref{Addr: shared, Kind: trace.Store, Work: 5})
			refs = append(refs, trace.Ref{Sync: true})
			refs = append(refs, trace.Ref{Addr: shared, Kind: trace.Load, Work: 5})
			refs = append(refs, trace.Ref{Sync: true})
		}
		_ = t
		return trace.FromSlice(refs)
	}
	return []trace.Stream{mk(0), mk(1)}
}

func TestCoherencePingPongProducesMisses(t *testing.T) {
	spec := testSpec() // 2 sockets x 2 cores
	// Threads 0 and 1 land on cores 0 and 1 with Cores=2... both socket 0.
	// Use Cores=4 with threads pinned round-robin: thread 0 -> core 0
	// (socket 0), thread 1 -> core 1 (socket 0). For cross-socket sharing,
	// use 2 threads on cores 0 and 2: that needs Cores=3+ so thread 1 maps
	// to core 1... simplest: 4 threads, but only threads 0 and 2 access the
	// shared line (on sockets 0 and 1).
	shared := uint64(1 << 30)
	mk := func(active bool, rounds int) trace.Stream {
		var refs []trace.Ref
		for i := 0; i < rounds; i++ {
			if active {
				refs = append(refs, trace.Ref{Addr: shared, Kind: trace.Store, Work: 5})
			} else {
				refs = append(refs, trace.Ref{Addr: 64 * uint64(i+2), Kind: trace.Load, Work: 5})
			}
			refs = append(refs, trace.Ref{Sync: true})
		}
		return trace.FromSlice(refs)
	}
	const rounds = 20
	streams := []trace.Stream{mk(true, rounds), mk(false, rounds), mk(true, rounds), mk(false, rounds)}

	with, err := Run(context.Background(), Config{Spec: spec, Threads: 4, Cores: 4, Coherence: true}, streams)
	if err != nil {
		t.Fatal(err)
	}
	streams = []trace.Stream{mk(true, rounds), mk(false, rounds), mk(true, rounds), mk(false, rounds)}
	without, err := Run(context.Background(), Config{Spec: spec, Threads: 4, Cores: 4}, streams)
	if err != nil {
		t.Fatal(err)
	}

	if with.Invalidations == 0 {
		t.Error("coherence run recorded no invalidations")
	}
	if without.Invalidations != 0 {
		t.Errorf("coherence off but %d invalidations", without.Invalidations)
	}
	// The ping-ponging line misses repeatedly only under coherence.
	if with.LLCMisses <= without.LLCMisses {
		t.Errorf("coherence misses %d should exceed non-coherent %d",
			with.LLCMisses, without.LLCMisses)
	}
}

func TestCoherenceSameSocketSharingIsFree(t *testing.T) {
	// Both sharers on socket 0: no cross-socket copies, no invalidations.
	spec := testSpec()
	res, err := Run(context.Background(), Config{Spec: spec, Threads: 2, Cores: 2, Coherence: true},
		pingPongStreams(10))
	if err != nil {
		t.Fatal(err)
	}
	if res.Invalidations != 0 {
		t.Errorf("same-socket sharing caused %d invalidations", res.Invalidations)
	}
}

func TestCoherenceReadSharingIsFree(t *testing.T) {
	// Cross-socket read-only sharing must not invalidate.
	spec := testSpec()
	shared := uint64(1 << 30)
	mk := func() trace.Stream {
		var refs []trace.Ref
		for i := 0; i < 20; i++ {
			refs = append(refs, trace.Ref{Addr: shared, Kind: trace.Load, Work: 5})
			refs = append(refs, trace.Ref{Sync: true})
		}
		return trace.FromSlice(refs)
	}
	streams := []trace.Stream{mk(), mk(), mk(), mk()}
	res, err := Run(context.Background(), Config{Spec: spec, Threads: 4, Cores: 4, Coherence: true}, streams)
	if err != nil {
		t.Fatal(err)
	}
	if res.Invalidations != 0 {
		t.Errorf("read sharing caused %d invalidations", res.Invalidations)
	}
	// One cold miss per socket LLC at most (plus none after).
	if res.LLCMisses > 4 {
		t.Errorf("read sharing missed %d times", res.LLCMisses)
	}
}
