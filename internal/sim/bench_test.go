package sim

import (
	"context"

	"testing"

	"repro/internal/trace"
)

// BenchmarkSimulatorThroughput measures end-to-end simulated references per
// second on the small test machine under memory-bound load.
func BenchmarkSimulatorThroughput(b *testing.B) {
	spec := testSpec()
	refs := b.N
	perThread := refs/4 + 1
	b.ReportAllocs()
	b.ResetTimer()
	res, err := Run(context.Background(), Config{Spec: spec, Threads: 4, Cores: 4},
		memBoundStreams(4, perThread))
	if err != nil {
		b.Fatal(err)
	}
	if res.OffChipRequests == 0 {
		b.Fatal("no traffic")
	}
}

// BenchmarkSimulatorCacheHits measures the hit path (batched execution).
func BenchmarkSimulatorCacheHits(b *testing.B) {
	spec := testSpec()
	var refs []trace.Ref
	n := b.N
	if n > 1_000_000 {
		n = 1_000_000
	}
	for i := 0; i < n; i++ {
		refs = append(refs, trace.Ref{Addr: uint64(i%8) * 64, Kind: trace.Load, Work: 1})
	}
	b.ResetTimer()
	iters := (b.N + n - 1) / n
	for i := 0; i < iters; i++ {
		if _, err := Run(context.Background(), Config{Spec: spec, Threads: 1, Cores: 1},
			[]trace.Stream{trace.FromSlice(refs)}); err != nil {
			b.Fatal(err)
		}
	}
}
