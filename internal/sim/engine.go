package sim

import (
	"repro/internal/eventq"
	"repro/internal/machine"
	"repro/internal/trace"
)

// thread is one program thread: a reference stream plus execution state.
type thread struct {
	id          int
	core        *core
	stream      trace.Stream
	outstanding int  // off-chip requests in flight
	blocked     bool // waiting on a dependent load, an MSHR slot or a barrier
	waitDep     bool // blocked specifically on a dependent load
	wantSlot    bool // blocked waiting for any MSHR slot
	atBarrier   bool // blocked at a synchronization barrier
	barrierSeq  int  // barriers passed (the ordinal of the next one)
	blockStart  uint64
	pending     *memReq // request waiting for an MSHR slot (valid when wantSlot)
	finished    bool
	smtCarry    float64 // fractional SMT slowdown cycles carried forward
	arriveFn    func()  // prebuilt barrier-arrival event callback
	st          ThreadStats
}

// core is one logical core: a run queue of pinned threads multiplexed
// round-robin.
type core struct {
	id          int
	socket      int
	threads     []*thread
	cur         int // index into threads of the running thread
	quantumLeft uint64
	stepQueued  bool   // a step event is scheduled or executing
	stepFn      func() // prebuilt step event callback
}

// engine wires machine, threads and cores to the event queue.
//
// The hot path is allocation-free in steady state: every event callback the
// engine schedules is either prebuilt once (per-core step, per-thread
// barrier arrival, barrier recheck) or owned by a pooled memReq whose
// closures are created when the request object is first allocated and live
// for as long as the object cycles through the free list.
type engine struct {
	cfg     Config
	m       *machine.Machine
	q       eventq.Interface
	threads []*thread
	cores   []*core
	// l1Latency is subtracted from hit latencies: first-level hits are
	// considered fully pipelined (no stall).
	l1Latency uint64

	// Page placement.
	pageHome map[uint64]int // page number -> MC index
	// firstTouchRR rotates among a socket's local controllers.
	firstTouchRR []int
	// localMCs caches Spec.LocalMCs per socket: homeMC and hopsFrom run
	// once per off-chip request and must not allocate.
	localMCs [][]int
	// interleaveRR rotates over activeMCs for the Interleave policy.
	interleaveRR int
	activeMCs    []int

	// Barrier bookkeeping: arrivals per barrier ordinal, plus the count of
	// finished threads (which count as arrived everywhere).
	barrierArrivals map[int]int
	finishedThreads int
	recheckFn       func() // prebuilt recheckBarriers event callback

	// Coherence directory (Config.Coherence): per cache line, bits 0-15
	// record which sockets hold a copy. A store invalidates every other
	// socket's copies.
	directory     map[uint64]uint16
	invalidations uint64

	// reqFree is the memReq free list. In-flight requests are bounded by
	// threads x MSHRs, so the list reaches a small steady-state size and
	// then no request is ever allocated again.
	reqFree []*memReq
}

func newEngine(cfg Config, m *machine.Machine, q eventq.Interface) *engine {
	e := &engine{
		cfg:             cfg,
		m:               m,
		q:               q,
		pageHome:        make(map[uint64]int),
		firstTouchRR:    make([]int, cfg.Spec.Sockets),
		barrierArrivals: make(map[int]int),
	}
	e.recheckFn = e.recheckBarriers
	if cfg.Coherence {
		e.directory = make(map[uint64]uint16)
	}
	if len(cfg.Spec.Levels) > 0 {
		e.l1Latency = cfg.Spec.Levels[0].Latency
	}
	for c := 0; c < cfg.Cores; c++ {
		cc := &core{
			id:          c,
			socket:      cfg.Spec.SocketOf(c),
			quantumLeft: cfg.Quantum,
		}
		cc.stepFn = func() {
			cc.stepQueued = false
			e.step(cc)
		}
		e.cores = append(e.cores, cc)
	}
	e.localMCs = make([][]int, cfg.Spec.Sockets)
	for s := range e.localMCs {
		e.localMCs[s] = cfg.Spec.LocalMCs(s)
	}
	// Active controllers: those local to sockets with at least one active
	// core, in controller order (the paper's activation order).
	seen := map[int]bool{}
	for c := 0; c < cfg.Cores; c++ {
		for _, mc := range e.localMCs[cfg.Spec.SocketOf(c)] {
			if !seen[mc] {
				seen[mc] = true
				e.activeMCs = append(e.activeMCs, mc)
			}
		}
	}
	return e
}

// addThread registers thread i with stream s, pinning it to core i % Cores.
func (e *engine) addThread(i int, s trace.Stream) {
	th := &thread{id: i, stream: s}
	th.arriveFn = func() { e.arriveBarrier(th.core, th) }
	e.threads = append(e.threads, th)
	c := e.cores[i%len(e.cores)]
	th.core = c
	c.threads = append(c.threads, th)
}

// start schedules the first step of every core.
func (e *engine) start() {
	for _, c := range e.cores {
		e.scheduleStep(c, 0)
	}
}

// scheduleStep queues a step for core c after delay cycles, unless one is
// already queued.
//
//simcheck:hotpath
func (e *engine) scheduleStep(c *core, delay uint64) {
	if c.stepQueued {
		return
	}
	c.stepQueued = true
	e.q.After(delay, c.stepFn)
}

// currentThread returns the thread the core should attend to, rotating
// past finished and barrier-blocked threads (a barrier yields the core; a
// memory stall does not — the OS would never switch on a cache miss). It
// returns nil when every pinned thread is finished or waiting at a
// barrier, and may return a memory-blocked thread, in which case the core
// idles until the completion callback resumes it.
func (c *core) currentThread() *thread {
	n := len(c.threads)
	for i := 0; i < n; i++ {
		th := c.threads[c.cur]
		if th.finished || (th.blocked && th.atBarrier) {
			c.cur = (c.cur + 1) % n
			continue
		}
		return th
	}
	return nil
}

// rotate advances the round-robin pointer and resets the quantum.
func (c *core) rotate(quantum uint64) {
	if len(c.threads) > 1 {
		c.cur = (c.cur + 1) % len(c.threads)
	}
	c.quantumLeft = quantum
}

// step runs one batch of the core's current thread: work cycles and cache
// hits are executed inline until an off-chip miss, the batch limit, or the
// end of the stream.
//
//simcheck:hotpath
func (e *engine) step(c *core) {
	th := c.currentThread()
	if th == nil || th.blocked {
		return
	}
	// SMT: while the sibling hardware thread is active on the shared
	// physical core, each work cycle costs SMTSlowdown cycles; the excess
	// shows up as stall cycles (issue-slot competition), matching how the
	// paper's per-thread counters see HyperThreading.
	smtExtra := 0.0
	if e.cfg.Spec.SMT > 1 {
		if sib := e.cfg.Spec.SMTSibling(c.id); sib >= 0 && sib < len(e.cores) && e.coreBusy(e.cores[sib]) {
			smtExtra = e.cfg.Spec.SMTSlowdownFactor() - 1
		}
	}
	var advance uint64
	refs := 0
	for {
		if advance >= e.cfg.BatchLimit || refs >= 8192 {
			break
		}
		ref, ok := th.stream.Next()
		if !ok {
			th.finished = true
			th.st.Finish = e.q.Now() + advance
			e.finishedThreads++
			// A finished thread counts as arrived at every remaining
			// barrier; waiters may now be releasable.
			e.q.After(advance, e.recheckFn)
			c.rotate(e.cfg.Quantum)
			break
		}
		refs++
		advance += uint64(ref.Work)
		th.st.Work += uint64(ref.Work)
		th.st.Instructions += 1 + uint64(ref.Work)
		if smtExtra > 0 && ref.Work > 0 {
			scaled := float64(ref.Work)*smtExtra + th.smtCarry
			extra := uint64(scaled)
			th.smtCarry = scaled - float64(extra)
			advance += extra
			th.st.Stall += extra
		}

		if ref.Sync {
			// Barrier: arrive in a dedicated event at now+advance.
			e.q.After(advance, th.arriveFn)
			e.chargeQuantum(c, advance)
			return
		}

		res := e.m.Hierarchies[c.id].Access(ref.Addr)
		if e.directory != nil {
			e.coherence(c, ref)
		}
		if !res.Miss {
			// Hits beyond the first level stall the pipeline for the extra
			// latency; first-level hits are fully pipelined.
			extra := res.Latency - e.l1Latency
			if res.HitLevel == 0 {
				extra = 0
			}
			th.st.Stall += extra
			advance += extra
			continue
		}
		// Off-chip miss: the request is issued at now+advance in a
		// dedicated event. The cache-traversal latency rides on the
		// request's path to memory (it is pipelined, not serialized on the
		// core): a dependent load pays it inside its block time, while
		// independent misses overlap it with further execution.
		req := e.getReq()
		req.c, req.th = c, th
		req.addr, req.dep, req.traversal = ref.Addr, ref.Dep, res.Latency
		e.q.After(advance, req.issueFn)
		e.chargeQuantum(c, advance)
		return
	}
	e.chargeQuantum(c, advance)
	if th.finished {
		// Move on to the next runnable thread immediately.
		if c.currentThread() != nil {
			e.scheduleStep(c, advance)
		}
		return
	}
	e.scheduleStep(c, advance)
}

// coreBusy reports whether the core has any unfinished thread — the SMT
// sibling-activity test.
func (e *engine) coreBusy(c *core) bool {
	for _, th := range c.threads {
		if !th.finished {
			return true
		}
	}
	return false
}

// chargeQuantum deducts the batch duration from the core's quantum,
// rotating the run queue on expiry.
//
//simcheck:hotpath
func (e *engine) chargeQuantum(c *core, advance uint64) {
	if advance >= c.quantumLeft {
		c.rotate(e.cfg.Quantum)
	} else {
		c.quantumLeft -= advance
	}
}

// coherence applies the invalidation protocol for one access: stores drop
// every other socket's copies of the line (and future accesses there miss
// again — coherence misses); loads and stores record this socket's copy.
func (e *engine) coherence(c *core, ref trace.Ref) {
	line := ref.Addr >> 6
	mask := e.directory[line]
	bit := uint16(1) << uint(c.socket)
	if ref.Kind == trace.Store && mask&^bit != 0 {
		for s := 0; s < e.cfg.Spec.Sockets; s++ {
			if s == c.socket || mask&(1<<uint(s)) == 0 {
				continue
			}
			// Drop the copy from every core hierarchy of socket s; shared
			// levels are invalidated through whichever hierarchy holds
			// them first.
			for coreID := s * e.cfg.Spec.CoresPerSocket; coreID < (s+1)*e.cfg.Spec.CoresPerSocket; coreID++ {
				if e.m.Hierarchies[coreID].Invalidate(ref.Addr) {
					e.invalidations++
				}
			}
		}
		mask = 0
	}
	e.directory[line] = mask | bit
}

// arriveBarrier handles a thread reaching barrier ordinal th.barrierSeq:
// the last arriver releases everyone, earlier arrivers block and yield the
// core to the next runnable thread.
func (e *engine) arriveBarrier(c *core, th *thread) {
	seq := th.barrierSeq
	th.barrierSeq++
	e.barrierArrivals[seq]++
	if e.barrierArrivals[seq]+e.finishedThreads >= e.cfg.Threads {
		e.releaseBarrier(seq)
		e.scheduleStep(c, 0)
		return
	}
	th.blocked = true
	th.atBarrier = true
	th.blockStart = e.q.Now()
	// Yield: another thread pinned to this core may run meanwhile.
	c.rotate(e.cfg.Quantum)
	e.scheduleStep(c, 0)
}

// releaseBarrier wakes every thread waiting at barrier ordinal seq.
func (e *engine) releaseBarrier(seq int) {
	delete(e.barrierArrivals, seq)
	for _, th := range e.threads {
		if th.blocked && th.atBarrier && th.barrierSeq == seq+1 {
			// Barrier waits are tracked separately and NOT added to Stall:
			// a blocking (futex-style) barrier deschedules the thread, so
			// its cycle counters do not advance while it waits — matching
			// the paper's per-thread PAPI measurements.
			th.st.SyncStall += e.q.Now() - th.blockStart
			th.blocked = false
			th.atBarrier = false
			e.scheduleStep(th.core, 0)
		}
	}
}

// recheckBarriers re-evaluates release conditions after a thread finished.
func (e *engine) recheckBarriers() {
	for seq, arrived := range e.barrierArrivals {
		if arrived+e.finishedThreads >= e.cfg.Threads {
			e.releaseBarrier(seq)
		}
	}
}

// Off-chip request pipeline stages, in traversal order. Stages whose
// hardware is absent (no UMA bus, local access, no link modeling) advance
// directly without scheduling an event, exactly like the closure chain
// they replaced.
const (
	stBus      = iota // occupy the socket's front-side bus (UMA)
	stLinkOut         // occupy the socket's interconnect link, outbound
	stHopOut          // pay the interconnect hop latency, outbound
	stMC              // queue at the home memory controller
	stLinkBack        // occupy the link for the returning data payload
	stHopBack         // pay the hop latency on the way back
	stDone            // request complete: release MSHR, unblock thread
)

// memReq is one pooled off-chip request. It carries the request through the
// memory pipeline as a staged state machine; its three callbacks are built
// once per object (not per request), which is what makes the dispatch loop
// allocation-free.
type memReq struct {
	e         *engine
	c         *core
	th        *thread
	addr      uint64
	traversal uint64 // on-chip cache traversal latency riding on the request
	hopLat    uint64
	hops      int
	home      int
	dep       bool
	stage     uint8
	issueFn   func()     // scheduled at issue time; runs e.issueReq(r)
	advanceFn func()     // scheduled for latency stages; runs r.advance()
	doneFn    func(bool) // submitted to controllers/buses/links
}

// getReq returns a request object from the free list, building its
// callbacks on first allocation.
//
//simcheck:hotpath
func (e *engine) getReq() *memReq {
	if n := len(e.reqFree); n > 0 {
		r := e.reqFree[n-1]
		e.reqFree[n-1] = nil
		e.reqFree = e.reqFree[:n-1]
		return r
	}
	r := &memReq{e: e}
	//simcheck:allow(hotpath) once-per-object closures: built only on free-list miss (object construction), reused for the object's whole lifetime
	r.issueFn = func() { r.e.issueReq(r) }
	//simcheck:allow(hotpath) once-per-object closure, same lifetime as issueFn above
	r.doneFn = func(bool) { r.advance() }
	r.advanceFn = r.advance
	return r
}

// putReq returns a request object to the free list. The caller must not
// touch r afterwards.
//
//simcheck:hotpath
func (e *engine) putReq(r *memReq) {
	r.c, r.th = nil, nil
	//simcheck:allow(hotpath) free-list append: capacity high-waters at the in-flight request peak, after which push/pop reuse the same backing array
	e.reqFree = append(e.reqFree, r)
}

// issueReq attempts to launch an off-chip request, blocking the thread
// while its MSHRs are full.
//
//simcheck:hotpath
func (e *engine) issueReq(r *memReq) {
	c, th := r.c, r.th
	if th.outstanding >= e.cfg.Spec.MSHRs {
		th.blocked = true
		th.wantSlot = true
		th.blockStart = e.q.Now()
		th.pending = r
		return
	}
	dep := r.dep
	e.launch(r)
	if dep {
		th.blocked = true
		th.waitDep = true
		th.blockStart = e.q.Now()
		return
	}
	e.scheduleStep(c, 0)
}

// launch routes one off-chip request into the pipeline: on-chip cache
// traversal, then the staged path through bus, link, interconnect hops,
// memory-controller service, and the return trip (see the st* stages).
//
//simcheck:hotpath
func (e *engine) launch(r *memReq) {
	c, th := r.c, r.th
	th.outstanding++
	th.st.OffChip++
	if e.cfg.MissHook != nil {
		e.cfg.MissHook(e.q.Now(), c.id)
	}

	r.home = e.homeMC(r.addr, c)
	r.hops = e.hopsFrom(c.socket, r.home)
	if r.hops > 0 {
		th.st.Remote++
	}
	r.hopLat = uint64(r.hops) * e.cfg.Spec.HopLatency
	r.stage = stBus
	if r.traversal > 0 {
		e.q.After(r.traversal, r.advanceFn)
		return
	}
	r.advance()
}

// advance moves the request to its next pipeline stage. Stages with no
// modeled hardware fall through immediately; the others hand the request to
// a queueing server (bus, link, controller) or schedule a fixed latency,
// and resume here from the prebuilt callback when it elapses.
//
//simcheck:hotpath
func (r *memReq) advance() {
	e := r.e
	for {
		switch r.stage {
		case stBus:
			r.stage = stLinkOut
			if len(e.m.Buses) > 0 {
				// UMA: the request occupies the socket's front-side bus on
				// its way to the shared controller.
				e.m.Buses[r.c.socket].Submit(r.addr, r.doneFn)
				return
			}
		case stLinkOut:
			r.stage = stHopOut
			// The link occupies the source socket's interconnect (if modeled
			// and the access is remote); requests queue when the link's
			// bandwidth saturates — the QPI/HT effect that makes remote
			// accesses increasingly costly as more sockets exchange data.
			if r.hops > 0 && len(e.m.LinkServers) > 0 {
				e.m.LinkServers[r.c.socket].Submit(r.addr, r.doneFn)
				return
			}
		case stHopOut:
			r.stage = stMC
			if r.hopLat > 0 {
				e.q.After(r.hopLat, r.advanceFn)
				return
			}
		case stMC:
			r.stage = stLinkBack
			e.m.MCs[r.home].Submit(r.addr, r.doneFn)
			return
		case stLinkBack:
			r.stage = stHopBack
			// Return path: link occupancy (the data payload), then hops.
			if r.hops > 0 && len(e.m.LinkServers) > 0 {
				e.m.LinkServers[r.c.socket].Submit(r.addr, r.doneFn)
				return
			}
		case stHopBack:
			r.stage = stDone
			if r.hopLat > 0 {
				e.q.After(r.hopLat, r.advanceFn)
				return
			}
		default: // stDone
			c, th, dep := r.c, r.th, r.dep
			e.putReq(r)
			e.complete(c, th, dep)
			return
		}
	}
}

// complete handles the return of one off-chip request.
//
//simcheck:hotpath
func (e *engine) complete(c *core, th *thread, wasDep bool) {
	th.outstanding--
	if !th.blocked {
		return
	}
	switch {
	case th.waitDep && wasDep:
		e.unblock(c, th)
		e.scheduleStep(c, 0)
	case th.wantSlot:
		pend := th.pending
		th.pending = nil
		e.unblock(c, th)
		e.issueReq(pend)
	}
}

// unblock charges the blocked interval as memory stall and clears flags.
//
//simcheck:hotpath
func (e *engine) unblock(c *core, th *thread) {
	wait := e.q.Now() - th.blockStart
	th.st.Stall += wait
	th.st.MemStall += wait
	th.blocked = false
	th.waitDep = false
	th.wantSlot = false
}

// homeMC returns the controller owning addr's page, assigning it per the
// placement policy on first touch.
func (e *engine) homeMC(addr uint64, c *core) int {
	page := addr / e.cfg.PageBytes
	if home, ok := e.pageHome[page]; ok {
		return home
	}
	var home int
	switch e.cfg.Placement {
	case Interleave:
		home = e.activeMCs[e.interleaveRR%len(e.activeMCs)]
		e.interleaveRR++
	default: // FirstTouch
		local := e.localMCs[c.socket]
		home = local[e.firstTouchRR[c.socket]%len(local)]
		e.firstTouchRR[c.socket]++
	}
	e.pageHome[page] = home
	return home
}

// hopsFrom returns the interconnect distance from a socket to a controller:
// the minimum hops from any of the socket's local controllers.
func (e *engine) hopsFrom(socket, mc int) int {
	best := -1
	for _, lmc := range e.localMCs[socket] {
		h := e.m.Topo.Hops(lmc, mc)
		if best < 0 || h < best {
			best = h
		}
	}
	if best < 0 {
		return 0
	}
	return best
}

// result assembles the run counters.
func (e *engine) result() Result {
	r := Result{
		MachineName: e.cfg.Spec.Name,
		Threads:     e.cfg.Threads,
		Cores:       e.cfg.Cores,
		Makespan:    e.q.Now(),
		Events:      e.q.Dispatched(),
	}
	for _, th := range e.threads {
		if !th.finished {
			r.Aborted = true
			// Charge an unfinished blocked interval up to the abort time so
			// the partial counters stay meaningful. Barrier waits go to
			// SyncStall (blocking-barrier semantics); memory waits to Stall.
			if th.blocked {
				wait := e.q.Now() - th.blockStart
				if th.atBarrier {
					th.st.SyncStall += wait
				} else {
					th.st.Stall += wait
					th.st.MemStall += wait
				}
				th.blocked = false
			}
		}
		r.PerThread = append(r.PerThread, th.st)
		r.TotalCycles += th.st.Cycles()
		r.WorkCycles += th.st.Work
		r.StallCycles += th.st.Stall
		r.MemStallCycles += th.st.MemStall
		r.SyncStallCycles += th.st.SyncStall
		r.Instructions += th.st.Instructions
		r.OffChipRequests += th.st.OffChip
		r.RemoteRequests += th.st.Remote
	}
	r.LLCMisses = e.m.LLCMisses()
	r.Invalidations = e.invalidations
	for _, mc := range e.m.MCs {
		r.MCStats = append(r.MCStats, mc.Stats())
	}
	for _, b := range e.m.Buses {
		r.BusStats = append(r.BusStats, b.Stats())
	}
	return r
}
