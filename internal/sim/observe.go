package sim

import (
	"strconv"

	"repro/internal/eventq"
	"repro/internal/telemetry"
)

// ObserveConfig enables in-run telemetry: a simulated-time sampler driven
// by the engine at a fixed interval, plus optional structured tracing and
// a live metrics registry. A nil *ObserveConfig (the default) keeps the
// zero-alloc hot path byte-for-byte identical to a build without
// telemetry — the engine's only concession is one nil check at start-up.
type ObserveConfig struct {
	// Interval is the sampling period in simulated cycles; 0 defaults to
	// the paper's 5 µs at the machine's clock (or 10000 cycles when the
	// spec has no clock).
	Interval uint64
	// Tracer, when non-nil, receives structured run events: run lifecycle,
	// sampler summary and calendar-queue resizes.
	Tracer *telemetry.Tracer
	// Registry, when non-nil, is updated live at every sample (gauges for
	// in-flight requests and per-controller utilization, a counter of
	// samples taken), so a debug HTTP endpoint can watch a long run.
	Registry *telemetry.Registry
}

// intervalFor resolves the sampling period against a machine clock.
func (o *ObserveConfig) intervalFor(clockGHz float64) uint64 {
	if o.Interval > 0 {
		return o.Interval
	}
	if cyclesPerMicro := uint64(clockGHz * 1000); cyclesPerMicro > 0 {
		return 5 * cyclesPerMicro
	}
	return 10000
}

// RunTelemetry is the sampled time-series output of one observed run,
// attached to Result.Telemetry. Every series shares the same sample
// clock (one sample per interval), so they can be written as one
// timeline table with telemetry.WriteTimelineDat.
type RunTelemetry struct {
	// Interval is the sampling period in cycles.
	Interval uint64
	// InFlight is the total number of off-chip requests in flight.
	InFlight *telemetry.TimeSeries
	// MCOccupancy has, per memory controller, the instantaneous number of
	// requests in the system (queued + in service) — the quantity the
	// M/M/1 model predicts as rho/(1-rho).
	MCOccupancy []*telemetry.TimeSeries
	// MCUtil has, per memory controller, the channel utilization over the
	// last window (busy cycles / (interval * channels)). The controller
	// books a request's busy time when service starts, so a saturated
	// window can read slightly above 1 (by at most service/interval); the
	// long-run mean converges to true utilization.
	MCUtil []*telemetry.TimeSeries
	// BusUtil has, per UMA front-side bus, the window utilization.
	BusUtil []*telemetry.TimeSeries
	// LinkUtil has, per NUMA interconnect link server, the window
	// utilization.
	LinkUtil []*telemetry.TimeSeries
	// CoreStallFrac has, per core, the stall cycles charged in the window
	// divided by the window length. It can exceed 1 when a core
	// multiplexes several simultaneously blocked threads.
	CoreStallFrac []*telemetry.TimeSeries
}

// Series returns every sampled series in a fixed, documented order:
// in-flight, per-MC occupancy, per-MC utilization, per-bus utilization,
// per-link utilization, per-core stall fraction. This is the column
// order of the exported .dat timeline.
func (rt *RunTelemetry) Series() []*telemetry.TimeSeries {
	out := make([]*telemetry.TimeSeries, 0,
		1+len(rt.MCOccupancy)+len(rt.MCUtil)+len(rt.BusUtil)+len(rt.LinkUtil)+len(rt.CoreStallFrac))
	out = append(out, rt.InFlight)
	out = append(out, rt.MCOccupancy...)
	out = append(out, rt.MCUtil...)
	out = append(out, rt.BusUtil...)
	out = append(out, rt.LinkUtil...)
	out = append(out, rt.CoreStallFrac...)
	return out
}

// observer drives the sampler from the simulation's own event loop. Its
// sampling callback is prebuilt once, reads engine state, appends one
// point per series and re-arms itself while the run still has pending
// events — so a finished simulation is never kept alive by its sampler.
type observer struct {
	e        *engine
	interval uint64
	rt       *RunTelemetry
	tracer   *telemetry.Tracer
	sampleFn func()

	// terminal is set by the tick that fires after the run's last real
	// event (the queue is empty when it runs); realEnd is the clock value
	// just before that tick, captured by drive, which Run restores as the
	// Makespan so observation never changes it.
	terminal bool
	realEnd  uint64
	endSet   bool

	// Previous busy-cycle totals, for windowed utilization deltas.
	prevMCBusy   []uint64
	prevBusBusy  []uint64
	prevLinkBusy []uint64
	// Previous per-core stall totals (including the in-progress portion of
	// currently blocked intervals, so window charges stay smooth even
	// though the engine books a blocked interval only when it ends).
	prevStall []uint64

	// Live registry handles, resolved once so sampling never hashes names.
	samples   *telemetry.Counter
	inflightG *telemetry.Gauge
	mcUtilG   []*telemetry.Gauge
}

// seriesHint pre-sizes series storage; runs longer than hint*interval
// grow by amortized doubling, which the alloc-bound test still covers.
const seriesHint = 256

func newObserver(e *engine, cfg *ObserveConfig) *observer {
	o := &observer{
		e:        e,
		interval: cfg.intervalFor(e.cfg.Spec.ClockGHz),
		tracer:   cfg.Tracer,
	}
	nMC, nBus, nLink, nCore := len(e.m.MCs), len(e.m.Buses), len(e.m.LinkServers), len(e.cores)
	rt := &RunTelemetry{
		Interval: o.interval,
		InFlight: telemetry.NewTimeSeries("inflight", "requests", seriesHint),
	}
	for i := 0; i < nMC; i++ {
		rt.MCOccupancy = append(rt.MCOccupancy,
			telemetry.NewTimeSeries(seriesName("mc", i, ".occupancy"), "requests", seriesHint))
		rt.MCUtil = append(rt.MCUtil,
			telemetry.NewTimeSeries(seriesName("mc", i, ".util"), "fraction", seriesHint))
	}
	for i := 0; i < nBus; i++ {
		rt.BusUtil = append(rt.BusUtil,
			telemetry.NewTimeSeries(seriesName("bus", i, ".util"), "fraction", seriesHint))
	}
	for i := 0; i < nLink; i++ {
		rt.LinkUtil = append(rt.LinkUtil,
			telemetry.NewTimeSeries(seriesName("link", i, ".util"), "fraction", seriesHint))
	}
	for i := 0; i < nCore; i++ {
		rt.CoreStallFrac = append(rt.CoreStallFrac,
			telemetry.NewTimeSeries(seriesName("core", i, ".stall_frac"), "fraction", seriesHint))
	}
	o.rt = rt
	o.prevMCBusy = make([]uint64, nMC)
	o.prevBusBusy = make([]uint64, nBus)
	o.prevLinkBusy = make([]uint64, nLink)
	o.prevStall = make([]uint64, nCore)

	if reg := cfg.Registry; reg != nil {
		o.samples = reg.Counter("sim_samples_total")
		o.inflightG = reg.Gauge("sim_inflight_requests")
		for i := 0; i < nMC; i++ {
			//simcheck:allow(tracelint) per-MC gauge family is indexed by controller id; prefix and suffix stay literal inside seriesName
			o.mcUtilG = append(o.mcUtilG, reg.Gauge(seriesName("sim_mc", i, "_util")))
		}
	}
	o.sampleFn = o.sample
	return o
}

// seriesName builds "prefix<i>suffix" (run-setup only, never sampled).
func seriesName(prefix string, i int, suffix string) string {
	return prefix + strconv.Itoa(i) + suffix
}

// start arms the first sample one interval into the run.
func (o *observer) start() {
	o.e.q.After(o.interval, o.sampleFn)
}

// drive is the observed run's event loop. It mirrors q.Run / q.RunWhile
// (maxCycles 0 means unbounded) but remembers the clock value from just
// before the terminal sampler tick: that tick fires after the last real
// event and would otherwise round the makespan up to the next sampling
// boundary. When done is non-nil, cont is consulted every `every`
// dispatched events — the same bounded-latency cancellation contract as
// eventq.RunChecked — and drive reports false if it stopped because cont
// did.
func (o *observer) drive(maxCycles, every uint64, done <-chan struct{}, cont func() bool) bool {
	q := o.e.q
	var n uint64
	for maxCycles == 0 || q.Now() < maxCycles {
		before := q.Now()
		if !q.Step() {
			return true
		}
		if o.terminal && !o.endSet {
			o.realEnd, o.endSet = before, true
		}
		if done != nil {
			if n++; n >= every {
				n = 0
				if !cont() {
					return false
				}
			}
		}
	}
	return true
}

// sample records one point on every series and re-arms the sampler while
// the run is still live.
func (o *observer) sample() {
	e := o.e
	if e.q.Len() == 0 {
		// Terminal tick: every real event completed before this sample
		// fired, so there is nothing live to record and no re-arm. The
		// clock advance that delivered this event is undone by Run via
		// drive's realEnd capture.
		o.terminal = true
		return
	}
	now := e.q.Now()

	inflight := 0
	for _, th := range e.threads {
		inflight += th.outstanding
	}
	o.rt.InFlight.Append(now, float64(inflight))

	window := float64(o.interval)
	for i, mc := range e.m.MCs {
		o.rt.MCOccupancy[i].Append(now, float64(mc.Occupancy()))
		busy := mc.Stats().BusyCycles
		util := float64(busy-o.prevMCBusy[i]) / (window * float64(mc.Config().Channels))
		o.rt.MCUtil[i].Append(now, util)
		o.prevMCBusy[i] = busy
		if o.mcUtilG != nil {
			o.mcUtilG[i].Set(util)
		}
	}
	for i, b := range e.m.Buses {
		busy := b.Stats().BusyCycles
		o.rt.BusUtil[i].Append(now, float64(busy-o.prevBusBusy[i])/window)
		o.prevBusBusy[i] = busy
	}
	for i, l := range e.m.LinkServers {
		busy := l.Stats().BusyCycles
		o.rt.LinkUtil[i].Append(now, float64(busy-o.prevLinkBusy[i])/(window*2))
		o.prevLinkBusy[i] = busy
	}
	for ci, c := range e.cores {
		stall := uint64(0)
		for _, th := range c.threads {
			stall += th.st.Stall
			if th.blocked && !th.atBarrier {
				// Count the in-progress portion of an open blocked interval;
				// the engine will book it only at unblock time.
				stall += now - th.blockStart
			}
		}
		o.rt.CoreStallFrac[ci].Append(now, float64(stall-o.prevStall[ci])/window)
		o.prevStall[ci] = stall
	}

	if o.samples != nil {
		o.samples.Inc()
		o.inflightG.Set(float64(inflight))
	}

	e.q.After(o.interval, o.sampleFn)
}

// attachQueueTracing logs calendar-queue resizes through the tracer. The
// hook lives on the queue's cold resize path, so tracing adds no cost to
// steady-state dispatch.
func attachQueueTracing(q eventq.Interface, tracer *telemetry.Tracer) {
	cal, ok := q.(*eventq.Queue)
	if !ok || !tracer.Enabled() {
		return
	}
	cal.OnResize = func(buckets int, width uint64, pending int) {
		tracer.Emit("eventq.resize",
			"cycles", cal.Now(), "buckets", buckets, "width", width, "pending", pending)
	}
}
