package sim

import (
	"context"
	"errors"
	"strings"
	"testing"

	"repro/internal/eventq"
	"repro/internal/telemetry"
)

// TestRunCanceled verifies the typed cancellation error and its partial
// counters: a context canceled before the run ends stops the event loop
// within CancelEvery events of the first check and reports everything
// measured so far.
func TestRunCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // canceled before the run even starts
	const every = 64
	_, err := Run(ctx, Config{Spec: testSpec(), Threads: 2, Cores: 2, CancelEvery: every},
		memBoundStreams(2, 5000))
	if err == nil {
		t.Fatal("canceled run returned nil error")
	}
	if !errors.Is(err, ErrCanceled) {
		t.Errorf("errors.Is(err, ErrCanceled) = false for %v", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("errors.Is(err, context.Canceled) = false for %v", err)
	}
	var ce *CanceledError
	if !errors.As(err, &ce) {
		t.Fatalf("err is %T, want *CanceledError", err)
	}
	// Bounded latency: the context was canceled before the first event, so
	// the loop must stop at the very first check — after exactly CancelEvery
	// dispatched events.
	if ce.Partial.Events == 0 || ce.Partial.Events > every {
		t.Errorf("partial events = %d, want 1..%d (cancellation latency bound)", ce.Partial.Events, every)
	}
	if !ce.Partial.Aborted {
		t.Error("partial result not marked Aborted")
	}
	if ce.DroppedEvents == 0 {
		t.Error("no pending events dropped; expected a drained queue")
	}
}

// TestRunCanceledObserved exercises the same cancellation path through the
// observer's drive loop and checks the run.cancel trace event is emitted.
func TestRunCanceledObserved(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var buf strings.Builder
	tracer := telemetry.NewTracer(&buf)
	_, err := Run(ctx, Config{
		Spec: testSpec(), Threads: 2, Cores: 2, CancelEvery: 64,
		Observe: &ObserveConfig{Interval: 500, Tracer: tracer},
	}, memBoundStreams(2, 5000))
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	var ce *CanceledError
	if !errors.As(err, &ce) {
		t.Fatalf("err is %T", err)
	}
	if ce.Partial.Events == 0 || ce.Partial.Events > 64+1 { // +1: the armed sampler tick may land in the window
		t.Errorf("partial events = %d, want within the check window", ce.Partial.Events)
	}
	if !strings.Contains(buf.String(), "run.cancel") {
		t.Errorf("tracer output missing run.cancel event:\n%s", buf.String())
	}
}

// TestRunUncancelableContextCompletes pins that a Background context (nil
// Done channel) takes the unchecked fast path and completes normally.
func TestRunUncancelableContextCompletes(t *testing.T) {
	res, err := Run(context.Background(), Config{Spec: testSpec(), Threads: 2, Cores: 2},
		memBoundStreams(2, 50))
	if err != nil {
		t.Fatal(err)
	}
	if res.Aborted {
		t.Error("run aborted")
	}
}

// TestCancellationDoesNotPerturbCounters verifies that running with a
// live (but never canceled) context produces byte-identical counters to a
// Background run: the cancellation probe reads, never writes.
func TestCancellationDoesNotPerturbCounters(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	base, err := Run(context.Background(), Config{Spec: testSpec(), Threads: 4, Cores: 2},
		memBoundStreams(4, 200))
	if err != nil {
		t.Fatal(err)
	}
	checked, err := Run(ctx, Config{Spec: testSpec(), Threads: 4, Cores: 2, CancelEvery: 8},
		memBoundStreams(4, 200))
	if err != nil {
		t.Fatal(err)
	}
	if base.TotalCycles != checked.TotalCycles || base.Events != checked.Events ||
		base.OffChipRequests != checked.OffChipRequests || base.Makespan != checked.Makespan {
		t.Errorf("checked run diverged: base %+v vs checked %+v", base, checked)
	}
}

// TestNewConfigOptions verifies the functional-options constructor and
// that validation reports every invalid field at once.
func TestNewConfigOptions(t *testing.T) {
	spec := testSpec()
	cfg, err := NewConfig(spec,
		WithThreads(4), WithCores(2), WithQuantum(1000),
		WithEventQueue(eventq.Heap), WithCancelEvery(128))
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Threads != 4 || cfg.Cores != 2 || cfg.Quantum != 1000 ||
		cfg.EventQueue != eventq.Heap || cfg.CancelEvery != 128 {
		t.Errorf("options not applied: %+v", cfg)
	}
	// Defaults fill untouched fields.
	if cfg.BatchLimit == 0 || cfg.PageBytes == 0 {
		t.Errorf("defaults not applied: %+v", cfg)
	}

	// Three invalid fields must all be reported together.
	_, err = NewConfig(spec,
		WithThreads(-1),
		WithCores(spec.TotalCores()+5),
		WithPlacement(Placement(99)))
	if err == nil {
		t.Fatal("invalid config accepted")
	}
	if !errors.Is(err, ErrBadConfig) {
		t.Errorf("errors.Is(err, ErrBadConfig) = false for %v", err)
	}
	var ce *ConfigError
	if !errors.As(err, &ce) {
		t.Fatalf("err is %T, want *ConfigError", err)
	}
	if len(ce.Fields) != 3 {
		t.Fatalf("reported %d invalid fields, want 3: %v", len(ce.Fields), err)
	}
	want := map[string]bool{"Threads": false, "Cores": false, "Placement": false}
	for _, f := range ce.Fields {
		if _, ok := want[f.Field]; !ok {
			t.Errorf("unexpected field %q in %v", f.Field, err)
		}
		want[f.Field] = true
	}
	for name, seen := range want {
		if !seen {
			t.Errorf("field %q not reported in %v", name, err)
		}
	}
}

// TestRunStreamMismatchError pins the Streams pseudo-field in the
// validation error.
func TestRunStreamMismatchError(t *testing.T) {
	_, err := Run(context.Background(), Config{Spec: testSpec(), Threads: 4, Cores: 2},
		memBoundStreams(2, 10))
	if !errors.Is(err, ErrBadConfig) {
		t.Fatalf("err = %v, want ErrBadConfig", err)
	}
	if !strings.Contains(err.Error(), "Streams") {
		t.Errorf("error does not name the Streams pseudo-field: %v", err)
	}
}
