package mmq

import (
	"errors"
	"math"
	"testing"
)

// TestMM1ErrorPaths pins the MM1 error contract at the stability boundary:
// rho -> 1 from below stays finite, rho >= 1 is ErrUnstable, and malformed
// rates are ErrBadParam. The model-fitting code in internal/core relies on
// this distinction to tell "saturated machine" apart from "bad input".
func TestMM1ErrorPaths(t *testing.T) {
	type want struct {
		err     error // nil means the call must succeed
		finite  bool  // when err == nil, the value must be finite
		atLeast float64
	}
	cases := []struct {
		name string
		q    MM1
		want want
	}{
		{"lambda==mu", MM1{Lambda: 1, Mu: 1}, want{err: ErrUnstable}},
		{"lambda>mu", MM1{Lambda: 2, Mu: 1}, want{err: ErrUnstable}},
		{"mu=0", MM1{Lambda: 1, Mu: 0}, want{err: ErrBadParam}},
		{"mu<0", MM1{Lambda: 1, Mu: -1}, want{err: ErrBadParam}},
		{"lambda<0", MM1{Lambda: -1, Mu: 1}, want{err: ErrBadParam}},
		{"empty-queue", MM1{Lambda: 0, Mu: 1}, want{finite: true, atLeast: 1}},
		// Just below saturation the queue is legal and the response time is
		// huge but finite — the regime the paper's omega curves climb into.
		{"rho-just-under-1", MM1{Lambda: 1 - 1e-9, Mu: 1}, want{finite: true, atLeast: 1e8}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			for name, call := range map[string]func() (float64, error){
				"ResponseTime": tc.q.ResponseTime,
				"WaitTime":     tc.q.WaitTime,
				"QueueLength":  tc.q.QueueLength,
			} {
				v, err := call()
				if tc.want.err != nil {
					if !errors.Is(err, tc.want.err) {
						t.Errorf("%s: err = %v, want %v", name, err, tc.want.err)
					}
					continue
				}
				if err != nil {
					t.Errorf("%s: unexpected error %v", name, err)
					continue
				}
				if math.IsInf(v, 0) || math.IsNaN(v) {
					t.Errorf("%s = %v, want finite", name, v)
				}
				if name == "ResponseTime" && v < tc.want.atLeast {
					t.Errorf("%s = %v, want >= %v", name, v, tc.want.atLeast)
				}
			}
		})
	}
}

// TestMM1ProbNErrors pins ProbN's own error precedence: instability (which
// includes malformed rates, since Stable() is false for them) is checked
// before the n < 0 parameter error.
func TestMM1ProbNErrors(t *testing.T) {
	stable := MM1{Lambda: 0.5, Mu: 1}
	if _, err := stable.ProbN(-1); !errors.Is(err, ErrBadParam) {
		t.Errorf("ProbN(-1) err = %v, want ErrBadParam", err)
	}
	if _, err := (MM1{Lambda: 1, Mu: 1}).ProbN(0); !errors.Is(err, ErrUnstable) {
		t.Errorf("saturated ProbN err = %v, want ErrUnstable", err)
	}
	if _, err := (MM1{Lambda: 1, Mu: 0}).ProbN(0); !errors.Is(err, ErrUnstable) {
		t.Errorf("mu=0 ProbN err = %v, want ErrUnstable (Stable() gate runs first)", err)
	}
	// Sanity: probabilities at rho = 0.5 sum towards 1.
	sum := 0.0
	for n := 0; n < 50; n++ {
		p, err := stable.ProbN(n)
		if err != nil {
			t.Fatal(err)
		}
		sum += p
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Errorf("probability mass = %v, want ~1", sum)
	}
}
