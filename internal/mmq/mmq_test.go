package mmq

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol
}

func TestMM1ResponseTime(t *testing.T) {
	q := MM1{Lambda: 0.5, Mu: 1}
	w, err := q.ResponseTime()
	if err != nil {
		t.Fatalf("ResponseTime: %v", err)
	}
	if !almostEqual(w, 2, 1e-12) {
		t.Errorf("W = %v, want 2", w)
	}
	wq, err := q.WaitTime()
	if err != nil {
		t.Fatalf("WaitTime: %v", err)
	}
	if !almostEqual(wq, 1, 1e-12) {
		t.Errorf("Wq = %v, want 1", wq)
	}
	l, err := q.QueueLength()
	if err != nil {
		t.Fatalf("QueueLength: %v", err)
	}
	if !almostEqual(l, 1, 1e-12) {
		t.Errorf("L = %v, want 1 (Little)", l)
	}
}

func TestMM1Unstable(t *testing.T) {
	for _, lam := range []float64{1, 1.5} {
		q := MM1{Lambda: lam, Mu: 1}
		if q.Stable() {
			t.Errorf("lambda=%v should be unstable", lam)
		}
		if _, err := q.ResponseTime(); !errors.Is(err, ErrUnstable) {
			t.Errorf("err = %v, want ErrUnstable", err)
		}
	}
}

func TestMM1BadParams(t *testing.T) {
	if _, err := (MM1{Lambda: -1, Mu: 1}).ResponseTime(); err == nil {
		t.Error("negative lambda should error")
	}
	if _, err := (MM1{Lambda: 0.1, Mu: 0}).ResponseTime(); err == nil {
		t.Error("zero mu should error")
	}
	if _, err := (MM1{Lambda: 0.1, Mu: 1}).ProbN(-1); err == nil {
		t.Error("negative n should error")
	}
}

func TestMM1ProbNSumsToOne(t *testing.T) {
	q := MM1{Lambda: 0.6, Mu: 1}
	var sum float64
	for n := 0; n < 200; n++ {
		p, err := q.ProbN(n)
		if err != nil {
			t.Fatalf("ProbN(%d): %v", n, err)
		}
		sum += p
	}
	if !almostEqual(sum, 1, 1e-9) {
		t.Errorf("sum of probabilities = %v", sum)
	}
}

// Property: the M/M/1 response time grows monotonically with lambda and
// diverges as lambda -> mu.
func TestMM1MonotoneProperty(t *testing.T) {
	f := func(raw uint8) bool {
		// lambda1 < lambda2 < mu = 1
		l1 := float64(raw%90) / 100
		l2 := l1 + 0.05
		w1, err1 := (MM1{Lambda: l1, Mu: 1}).ResponseTime()
		w2, err2 := (MM1{Lambda: l2, Mu: 1}).ResponseTime()
		return err1 == nil && err2 == nil && w2 > w1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestMMcReducesToMM1(t *testing.T) {
	// With one server, M/M/c must equal M/M/1 exactly.
	for _, lam := range []float64{0.1, 0.5, 0.9} {
		c := MMc{Lambda: lam, Mu: 1, Servers: 1}
		s := MM1{Lambda: lam, Mu: 1}
		wc, err := c.ResponseTime()
		if err != nil {
			t.Fatalf("MMc: %v", err)
		}
		ws, _ := s.ResponseTime()
		if !almostEqual(wc, ws, 1e-9) {
			t.Errorf("lambda=%v: MMc W=%v, MM1 W=%v", lam, wc, ws)
		}
	}
}

func TestMMcErlangCKnownValue(t *testing.T) {
	// Classic check: c=2, lambda=1.5, mu=1 => a=1.5, rho=0.75.
	// ErlangC = (a^c/c!)/( (1-rho) * sum_{k<c} a^k/k! + a^c/c! )
	// = (1.125)/(0.25*(1+1.5) + 1.125) = 1.125/1.75 ≈ 0.642857.
	q := MMc{Lambda: 1.5, Mu: 1, Servers: 2}
	pc, err := q.ErlangC()
	if err != nil {
		t.Fatalf("ErlangC: %v", err)
	}
	if !almostEqual(pc, 0.6428571428, 1e-6) {
		t.Errorf("ErlangC = %v, want ~0.642857", pc)
	}
}

func TestMMcMoreServersLowerWait(t *testing.T) {
	w1, err := (MMc{Lambda: 0.9, Mu: 1, Servers: 1}).WaitTime()
	if err != nil {
		t.Fatal(err)
	}
	w2, err := (MMc{Lambda: 0.9, Mu: 1, Servers: 2}).WaitTime()
	if err != nil {
		t.Fatal(err)
	}
	w4, err := (MMc{Lambda: 0.9, Mu: 1, Servers: 4}).WaitTime()
	if err != nil {
		t.Fatal(err)
	}
	if !(w1 > w2 && w2 > w4) {
		t.Errorf("wait should shrink with servers: %v %v %v", w1, w2, w4)
	}
}

func TestMMcUnstableAndBadParams(t *testing.T) {
	if _, err := (MMc{Lambda: 2, Mu: 1, Servers: 2}).ErlangC(); !errors.Is(err, ErrUnstable) {
		t.Errorf("err = %v, want ErrUnstable", err)
	}
	if _, err := (MMc{Lambda: 1, Mu: 1, Servers: 0}).ErlangC(); !errors.Is(err, ErrBadParam) {
		t.Errorf("err = %v, want ErrBadParam", err)
	}
}

func TestMG1ExponentialMatchesMM1(t *testing.T) {
	for _, lam := range []float64{0.2, 0.5, 0.8} {
		g := Exponential(lam, 1)
		w, err := g.ResponseTime()
		if err != nil {
			t.Fatalf("MG1: %v", err)
		}
		wm, _ := (MM1{Lambda: lam, Mu: 1}).ResponseTime()
		if !almostEqual(w, wm, 1e-9) {
			t.Errorf("lambda=%v: MG1 exp W=%v, MM1 W=%v", lam, w, wm)
		}
	}
}

func TestMD1HalfTheQueueingOfMM1(t *testing.T) {
	// M/D/1 queueing delay is exactly half of M/M/1's at equal rates.
	lam, mu := 0.7, 1.0
	d := Deterministic(lam, 1/mu)
	wd, err := d.WaitTime()
	if err != nil {
		t.Fatal(err)
	}
	wm, _ := (MM1{Lambda: lam, Mu: mu}).WaitTime()
	if !almostEqual(wd, wm/2, 1e-9) {
		t.Errorf("M/D/1 Wq = %v, want half of M/M/1's %v", wd, wm)
	}
}

func TestMG1BadParams(t *testing.T) {
	if _, err := (MG1{Lambda: 0.1, ES: 1, ES2: 0.5}).WaitTime(); !errors.Is(err, ErrBadParam) {
		t.Errorf("ES2 < ES^2 must be rejected, err = %v", err)
	}
	if _, err := (MG1{Lambda: 2, ES: 1, ES2: 2}).WaitTime(); !errors.Is(err, ErrUnstable) {
		t.Errorf("unstable err = %v", err)
	}
}

func TestRepairmanSingleCustomer(t *testing.T) {
	// One customer never queues: R = 1/mu exactly.
	m := Repairman{N: 1, Z: 100, Mu: 0.01}
	r, x, err := m.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(r, 100, 1e-9) {
		t.Errorf("R = %v, want 100", r)
	}
	// X = 1/(R+Z) = 1/200.
	if !almostEqual(x, 0.005, 1e-12) {
		t.Errorf("X = %v, want 0.005", x)
	}
}

func TestRepairmanSaturation(t *testing.T) {
	// With many customers the server saturates: X -> mu, R -> N/mu - Z.
	m := Repairman{N: 100, Z: 10, Mu: 0.5}
	r, x, err := m.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(x, 0.5, 1e-6) {
		t.Errorf("saturated X = %v, want ~mu=0.5", x)
	}
	wantR := float64(100)/0.5 - 10
	if !almostEqual(r, wantR, 0.5) {
		t.Errorf("saturated R = %v, want ~%v", r, wantR)
	}
}

func TestRepairmanBadParams(t *testing.T) {
	if _, _, err := (Repairman{N: 0, Z: 1, Mu: 1}).Solve(); !errors.Is(err, ErrBadParam) {
		t.Errorf("err = %v", err)
	}
	if _, _, err := (Repairman{N: 1, Z: -1, Mu: 1}).Solve(); !errors.Is(err, ErrBadParam) {
		t.Errorf("err = %v", err)
	}
}

// Property: repairman response time is non-decreasing in N.
func TestRepairmanMonotoneProperty(t *testing.T) {
	f := func(raw uint8) bool {
		n := int(raw%50) + 1
		r1, _, err1 := (Repairman{N: n, Z: 50, Mu: 0.1}).Solve()
		r2, _, err2 := (Repairman{N: n + 1, Z: 50, Mu: 0.1}).Solve()
		return err1 == nil && err2 == nil && r2 >= r1-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: for light load the repairman approaches the open M/M/1 response.
func TestRepairmanLightLoadMatchesOpenQueue(t *testing.T) {
	// N customers with long think time Z: per-core rate L = 1/(Z + 1/mu),
	// aggregate lambda = N*L stays far below mu, so R ~ M/M/1 response.
	m := Repairman{N: 4, Z: 10000, Mu: 0.1}
	r, x, err := m.Solve()
	if err != nil {
		t.Fatal(err)
	}
	open := MM1{Lambda: x, Mu: 0.1}
	w, err := open.ResponseTime()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r-w)/w > 0.02 {
		t.Errorf("light-load closed R=%v vs open W=%v differ by >2%%", r, w)
	}
}

func TestMMcResponseErrorPropagation(t *testing.T) {
	if _, err := (MMc{Lambda: 5, Mu: 1, Servers: 2}).ResponseTime(); !errors.Is(err, ErrUnstable) {
		t.Errorf("err = %v", err)
	}
	if _, err := (MMc{Lambda: 5, Mu: 1, Servers: 2}).WaitTime(); !errors.Is(err, ErrUnstable) {
		t.Errorf("err = %v", err)
	}
	if (MMc{Lambda: 1, Mu: 1, Servers: 0}).Stable() {
		t.Error("zero servers cannot be stable")
	}
}

func TestMM1QueueLengthError(t *testing.T) {
	if _, err := (MM1{Lambda: 2, Mu: 1}).QueueLength(); !errors.Is(err, ErrUnstable) {
		t.Errorf("err = %v", err)
	}
	if _, err := (MM1{Lambda: 2, Mu: 1}).WaitTime(); !errors.Is(err, ErrUnstable) {
		t.Errorf("err = %v", err)
	}
	if _, err := (MM1{Lambda: 2, Mu: 1}).ProbN(3); !errors.Is(err, ErrUnstable) {
		t.Errorf("err = %v", err)
	}
}

func TestMG1ResponseErrorPropagation(t *testing.T) {
	if _, err := (MG1{Lambda: 2, ES: 1, ES2: 2}).ResponseTime(); !errors.Is(err, ErrUnstable) {
		t.Errorf("err = %v", err)
	}
	if (MG1{Lambda: 0.1, ES: 1, ES2: 0.5}).Stable() {
		t.Error("invalid moments cannot be stable")
	}
}

func TestRepairmanAccessors(t *testing.T) {
	m := Repairman{N: 4, Z: 100, Mu: 0.05}
	r, err := m.ResponseTime()
	if err != nil || r <= 0 {
		t.Errorf("ResponseTime = %v, %v", r, err)
	}
	x, err := m.Throughput()
	if err != nil || x <= 0 {
		t.Errorf("Throughput = %v, %v", x, err)
	}
	if _, err := (Repairman{N: 1, Z: 1, Mu: 0}).ResponseTime(); !errors.Is(err, ErrBadParam) {
		t.Errorf("err = %v", err)
	}
	if _, err := (Repairman{N: 1, Z: 1, Mu: 0}).Throughput(); !errors.Is(err, ErrBadParam) {
		t.Errorf("err = %v", err)
	}
}
