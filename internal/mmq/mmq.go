// Package mmq implements the queueing-theory building blocks behind the
// paper's analytical model: the open M/M/1 queue (the model the paper fits
// to programs with large, non-bursty memory contention), the M/M/c and
// M/G/1 generalizations mentioned as future extensions, and the closed
// machine-repairman model used as an ablation baseline (what a purely
// blocking core without memory-level parallelism would look like).
//
// Rates are expressed in requests per cycle, times in cycles, so results
// plug directly into the cycle-count model of internal/core.
package mmq

import (
	"errors"
	"math"
)

// ErrUnstable is returned by open-queue formulas when the offered load
// reaches or exceeds capacity (utilization >= 1), where steady-state
// quantities diverge.
var ErrUnstable = errors.New("mmq: offered load at or above capacity")

// ErrBadParam is returned for non-positive rates or invalid server counts.
var ErrBadParam = errors.New("mmq: invalid parameter")

// MM1 is an M/M/1 queue with Poisson arrivals at rate Lambda and
// exponential service at rate Mu (both per cycle).
type MM1 struct {
	Lambda float64
	Mu     float64
}

// Utilization returns rho = lambda/mu.
func (q MM1) Utilization() float64 { return q.Lambda / q.Mu }

// Stable reports whether the queue has a steady state (rho < 1).
func (q MM1) Stable() bool {
	return q.Lambda >= 0 && q.Mu > 0 && q.Lambda < q.Mu
}

// ResponseTime returns the mean sojourn time (wait + service):
// W = 1/(mu - lambda). This is exactly Creq(n) in the paper's equation (5)
// with lambda = n*L.
func (q MM1) ResponseTime() (float64, error) {
	if q.Mu <= 0 || q.Lambda < 0 {
		return 0, ErrBadParam
	}
	if !q.Stable() {
		return 0, ErrUnstable
	}
	return 1 / (q.Mu - q.Lambda), nil
}

// WaitTime returns the mean time spent queueing before service begins:
// Wq = rho/(mu - lambda).
func (q MM1) WaitTime() (float64, error) {
	w, err := q.ResponseTime()
	if err != nil {
		return 0, err
	}
	return w - 1/q.Mu, nil
}

// QueueLength returns the mean number of requests in the system (Little's
// law: L = lambda * W).
func (q MM1) QueueLength() (float64, error) {
	w, err := q.ResponseTime()
	if err != nil {
		return 0, err
	}
	return q.Lambda * w, nil
}

// ProbN returns the steady-state probability of exactly n requests in the
// system: (1-rho) * rho^n.
func (q MM1) ProbN(n int) (float64, error) {
	if !q.Stable() {
		return 0, ErrUnstable
	}
	if n < 0 {
		return 0, ErrBadParam
	}
	rho := q.Utilization()
	return (1 - rho) * math.Pow(rho, float64(n)), nil
}

// MMc is an M/M/c queue: c parallel servers each with rate Mu, shared
// Poisson arrival stream at rate Lambda. It models a memory controller with
// multiple independent channels.
type MMc struct {
	Lambda  float64
	Mu      float64
	Servers int
}

// Utilization returns rho = lambda/(c*mu).
func (q MMc) Utilization() float64 {
	return q.Lambda / (float64(q.Servers) * q.Mu)
}

// Stable reports whether the queue has a steady state.
func (q MMc) Stable() bool {
	return q.Servers >= 1 && q.Mu > 0 && q.Lambda >= 0 && q.Utilization() < 1
}

// ErlangC returns the probability that an arriving request must queue
// (all c servers busy).
func (q MMc) ErlangC() (float64, error) {
	if q.Servers < 1 || q.Mu <= 0 || q.Lambda < 0 {
		return 0, ErrBadParam
	}
	if !q.Stable() {
		return 0, ErrUnstable
	}
	c := q.Servers
	a := q.Lambda / q.Mu // offered load in Erlangs
	rho := q.Utilization()

	// Compute the Erlang-C formula with a numerically stable iterative
	// evaluation of the Erlang-B recurrence, then convert B -> C.
	b := 1.0
	for k := 1; k <= c; k++ {
		b = a * b / (float64(k) + a*b)
	}
	return b / (1 - rho*(1-b)), nil
}

// WaitTime returns the mean queueing delay Wq = C(c,a)/(c*mu - lambda).
func (q MMc) WaitTime() (float64, error) {
	pc, err := q.ErlangC()
	if err != nil {
		return 0, err
	}
	return pc / (float64(q.Servers)*q.Mu - q.Lambda), nil
}

// ResponseTime returns mean sojourn time Wq + 1/mu.
func (q MMc) ResponseTime() (float64, error) {
	wq, err := q.WaitTime()
	if err != nil {
		return 0, err
	}
	return wq + 1/q.Mu, nil
}

// MG1 is an M/G/1 queue characterized by the first two moments of the
// service time: mean ES and second moment ES2. It models memory controllers
// whose service time is not exponential (e.g., deterministic DRAM timing or
// a row-buffer hit/miss mixture).
type MG1 struct {
	Lambda float64
	ES     float64 // mean service time (cycles)
	ES2    float64 // second moment of service time (cycles^2)
}

// Utilization returns rho = lambda*ES.
func (q MG1) Utilization() float64 { return q.Lambda * q.ES }

// Stable reports whether the queue has a steady state.
func (q MG1) Stable() bool {
	return q.Lambda >= 0 && q.ES > 0 && q.ES2 >= q.ES*q.ES && q.Utilization() < 1
}

// WaitTime returns the Pollaczek–Khinchine mean queueing delay:
// Wq = lambda*ES2 / (2*(1-rho)).
func (q MG1) WaitTime() (float64, error) {
	if q.Lambda < 0 || q.ES <= 0 || q.ES2 < q.ES*q.ES {
		return 0, ErrBadParam
	}
	if !q.Stable() {
		return 0, ErrUnstable
	}
	return q.Lambda * q.ES2 / (2 * (1 - q.Utilization())), nil
}

// ResponseTime returns Wq + ES.
func (q MG1) ResponseTime() (float64, error) {
	wq, err := q.WaitTime()
	if err != nil {
		return 0, err
	}
	return wq + q.ES, nil
}

// Deterministic returns the MG1 for deterministic service of duration s
// (ES2 = s^2), i.e. an M/D/1 queue.
func Deterministic(lambda, s float64) MG1 {
	return MG1{Lambda: lambda, ES: s, ES2: s * s}
}

// Exponential returns the MG1 equivalent of an M/M/1 with service rate mu
// (ES2 = 2/mu^2), useful for cross-checking the two formulations.
func Exponential(lambda, mu float64) MG1 {
	return MG1{Lambda: lambda, ES: 1 / mu, ES2: 2 / (mu * mu)}
}

// Repairman is the closed machine-repairman (finite-source) model: N
// "machines" (cores) each think for mean Z cycles between requests, then
// queue at a single exponential server with rate Mu. Unlike the open M/M/1
// it can never be unstable — it self-throttles — which is precisely why it
// UNDER-predicts contention for cores with memory-level parallelism. Kept
// as the ablation baseline (BenchmarkAblationClosedModel).
type Repairman struct {
	N  int     // number of customers (cores)
	Z  float64 // mean think time between requests (cycles)
	Mu float64 // server rate (requests/cycle)
}

// Solve runs exact Mean Value Analysis for the single-queue closed network
// and returns the mean response time R at the server and the throughput X
// of the network (requests/cycle).
func (m Repairman) Solve() (responseTime, throughput float64, err error) {
	if m.N < 1 || m.Mu <= 0 || m.Z < 0 {
		return 0, 0, ErrBadParam
	}
	s := 1 / m.Mu // mean service demand
	var q float64 // mean queue length at the server
	var r, x float64
	for n := 1; n <= m.N; n++ {
		r = s * (1 + q)
		x = float64(n) / (r + m.Z)
		q = x * r
	}
	return r, x, nil
}

// ResponseTime returns the MVA mean response time at the server.
func (m Repairman) ResponseTime() (float64, error) {
	r, _, err := m.Solve()
	return r, err
}

// Throughput returns the MVA network throughput.
func (m Repairman) Throughput() (float64, error) {
	_, x, err := m.Solve()
	return x, err
}
