package api

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the wire-compatibility golden fixtures")

// wireCases pins one fully-populated value per wire type. The golden
// fixtures under testdata/ are the v1 schema contract: a renamed or
// removed json tag, a dropped omitempty, or a reordered field changes
// the encoding and fails the byte-exact comparison below. Additions are
// allowed — they re-baseline with -update — renames and removals mean a
// /v2, not a fixture edit.
var wireCases = []struct {
	golden string
	v      any
}{
	{"predict_request.golden.json", PredictRequest{
		Machine: "IntelUMA8", Program: "CG", Class: "W", Cores: 6, Scale: 0.1,
	}},
	{"predict_request_sparse.golden.json", PredictRequest{
		Machine: "IntelUMA8", Program: "EP", Class: "W",
	}},
	{"predict_response.golden.json", PredictResponse{
		Machine: "IntelUMA8", Program: "CG", Class: "W", Cores: 6, Scale: 0.1,
		Omega: 0.4375, Cycles: 1437500, BaselineCycles: 1000000,
		MakespanCycles: 239583.3333, MCUtilization: []float64{0.72, 0.68},
		Tier: TierAnalytical, ConfigHash: "5ec3e4f0c9a1",
		Fit: &Fit{Anchors: []int{1, 2, 3, 4}, R2: 0.9987, Residual: 0.013, SaturationCores: 9.44},
	}},
	{"predict_response_sim.golden.json", PredictResponse{
		Machine: "IntelUMA8", Program: "EP", Class: "W", Cores: 8, Scale: 0.1,
		Omega: 0.9112, Cycles: 1911200, BaselineCycles: 1000000,
		MakespanCycles: 238900, MCUtilization: []float64{0.81},
		Tier: TierSimulation, ConfigHash: "77aa01bc",
	}},
	{"error.golden.json", Error{Error: "unknown machine \"Intel9\""}},
	{"curve_request.golden.json", CurveRequest{
		Machine: "IntelUMA8", Program: "CG", Class: "W", Cores: []int{1, 2, 4, 8}, Scale: 0.1,
	}},
	{"curve_request_sparse.golden.json", CurveRequest{
		Machine: "IntelUMA8", Program: "CG", Class: "W",
	}},
	{"curve_response.golden.json", CurveResponse{
		Machine: "IntelUMA8", Program: "CG", Class: "W", Scale: 0.1,
		Points: []CurvePoint{
			{Cores: 1, Omega: 0, Cycles: 1000000, BaselineCycles: 1000000,
				MakespanCycles: 1000000, MCUtilization: []float64{0.2},
				Tier: TierAnalytical, ConfigHash: "aa01"},
			{Cores: 8, Omega: 0.9112, Cycles: 1911200, BaselineCycles: 1000000,
				MakespanCycles: 238900, MCUtilization: []float64{0.81},
				Tier: TierSimulation, ConfigHash: "bb02"},
			{Cores: 4, Error: "shed: tenant queue full"},
		},
		Summary: CurveSummary{
			Points: 3, Analytical: 1, Simulation: 1, Shed: 1,
			Fit: &Fit{Anchors: []int{1, 2, 3, 4}, R2: 0.9987, Residual: 0.013, SaturationCores: 9.44},
		},
	}},
	{"curve_frame_point.golden.json", CurveFrame{
		Point: &CurvePoint{Cores: 3, Omega: 0.21, Cycles: 1210000,
			BaselineCycles: 1000000, MakespanCycles: 403333.3333,
			MCUtilization: []float64{0.5}, Tier: TierAnalytical, ConfigHash: "cc03"},
	}},
	{"curve_frame_summary.golden.json", CurveFrame{
		Summary: &CurveSummary{Points: 8, Analytical: 8, Simulation: 0},
	}},
	{"catalog_response.golden.json", CatalogResponse{
		Scale: 0.1,
		Machines: []CatalogMachine{
			{Name: "IntelUMA8", Kind: "uma", Sockets: 2, CoresPerSocket: 4, TotalCores: 8},
		},
		Programs: []CatalogProgram{
			{Name: "CG", Classes: []string{"S", "W", "A"}, Description: "conjugate gradient"},
		},
	}},
	{"healthz_response.golden.json", HealthzResponse{
		Status: "ok", Scale: 0.1, Fits: 1, CachedRuns: 12,
		QueueDepth: 0, QueueCap: 64, TenantCap: 16, Tenants: 2,
		PredictP50Ms: 0.004, PredictP99Ms: 18.5,
	}},
}

// TestWireGolden proves the encoded form of every v1 wire type is
// byte-identical to the committed fixtures — the schema survived
// whatever refactor this tree carries. Re-baseline deliberately with
// `go test ./internal/api -run WireGolden -update`.
func TestWireGolden(t *testing.T) {
	for _, tc := range wireCases {
		t.Run(tc.golden, func(t *testing.T) {
			var buf bytes.Buffer
			enc := json.NewEncoder(&buf)
			enc.SetIndent("", "  ")
			if err := enc.Encode(tc.v); err != nil {
				t.Fatalf("encode: %v", err)
			}
			path := filepath.Join("testdata", tc.golden)
			if *update {
				if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
					t.Fatalf("update: %v", err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("read golden (run with -update to baseline): %v", err)
			}
			if !bytes.Equal(buf.Bytes(), want) {
				t.Errorf("wire encoding drifted from %s\n got: %s\nwant: %s", path, buf.Bytes(), want)
			}
		})
	}
}

// TestWireRoundTrip proves every fixture decodes back into an equal
// value: no field is write-only, no omitempty hides a decode mismatch.
func TestWireRoundTrip(t *testing.T) {
	for _, tc := range wireCases {
		t.Run(tc.golden, func(t *testing.T) {
			blob, err := json.Marshal(tc.v)
			if err != nil {
				t.Fatalf("encode: %v", err)
			}
			// Decode into a fresh value of the same dynamic type, then
			// re-encode: byte equality means a lossless round trip
			// without reflect-based deep comparison.
			back, err := json.Marshal(decodeAs(t, tc.v, blob))
			if err != nil {
				t.Fatalf("re-encode: %v", err)
			}
			if !bytes.Equal(blob, back) {
				t.Errorf("lossy round trip\n got: %s\nwant: %s", back, blob)
			}
		})
	}
}

// decodeAs unmarshals blob into a new value of v's concrete type.
func decodeAs(t *testing.T, v any, blob []byte) any {
	t.Helper()
	var out any
	var err error
	switch v.(type) {
	case PredictRequest:
		x := PredictRequest{}
		err = json.Unmarshal(blob, &x)
		out = x
	case PredictResponse:
		x := PredictResponse{}
		err = json.Unmarshal(blob, &x)
		out = x
	case Error:
		x := Error{}
		err = json.Unmarshal(blob, &x)
		out = x
	case CurveRequest:
		x := CurveRequest{}
		err = json.Unmarshal(blob, &x)
		out = x
	case CurveResponse:
		x := CurveResponse{}
		err = json.Unmarshal(blob, &x)
		out = x
	case CurveFrame:
		x := CurveFrame{}
		err = json.Unmarshal(blob, &x)
		out = x
	case CatalogResponse:
		x := CatalogResponse{}
		err = json.Unmarshal(blob, &x)
		out = x
	case HealthzResponse:
		x := HealthzResponse{}
		err = json.Unmarshal(blob, &x)
		out = x
	default:
		t.Fatalf("decodeAs: unhandled type %T", v)
	}
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	return out
}
