// Package api is the versioned wire protocol of the contention service:
// every request body, response body, streaming frame, header name and
// route path that crosses the HTTP boundary of cmd/simserved lives here,
// and only here. internal/server marshals these types, internal/load and
// cmd/loadgen send them, cmd/traceview and the smoke scripts assert on
// them — none of those packages declares its own copy of the protocol
// (enforced at vet time by the apilint analyzer, internal/analysis).
//
// The schema is v1: the /v1/* paths below are the version. Fields are
// only ever added (always with omitempty so old clients keep decoding);
// renames and removals mean /v2. The wire-compatibility golden test in
// this package (testdata/*.golden.json, re-baselined with -update) pins
// the encoded form byte-for-byte.
//
// docs/API.md is the operator-facing reference for everything here.
package api

// Route paths served by internal/server. The /v1 prefix is the wire
// version of the types in this package.
const (
	// PathPredict answers one contention query (POST, PredictRequest →
	// PredictResponse).
	PathPredict = "/v1/predict"
	// PathCurve answers a whole ω(n) curve in one request (POST,
	// CurveRequest → CurveResponse, or NDJSON CurveFrame stream when the
	// client sends Accept: application/x-ndjson).
	PathCurve = "/v1/curve"
	// PathCatalog lists machines, programs, classes and the instance
	// scale (GET → CatalogResponse).
	PathCatalog = "/v1/catalog"
	// PathHealthz is liveness plus fit/cache/queue occupancy
	// (GET → HealthzResponse).
	PathHealthz = "/healthz"
	// PathMetrics is the Prometheus text exposition (GET).
	PathMetrics = "/metrics"
)

// Wire headers shared between the server, the load harness and the
// smoke scripts.
const (
	// HeaderTier reports which tier answered a prediction:
	// "analytical" or "simulation".
	HeaderTier = "X-Simserved-Tier"
	// HeaderConfigHash reports the content address of the answered
	// query (single-point responses only; curve points carry theirs in
	// the body).
	HeaderConfigHash = "X-Simserved-Config-Hash"
	// HeaderTenant identifies the caller's admission bucket on requests.
	// Absent means the anonymous tenant "".
	HeaderTenant = "X-Simserved-Tenant"
	// HeaderAdmissionScope reports, on a 429, which bucket was full:
	// ScopeTenant or ScopeGlobal.
	HeaderAdmissionScope = "X-Simserved-Admission-Scope"
	// HeaderTrace reports the request's 128-bit trace ID (32 hex
	// digits) back to the client; set on every response — including
	// 4xx/5xx — when tracing is enabled, so any response is joinable to
	// the server's span log.
	HeaderTrace = "X-Simserved-Trace"
	// HeaderTraceparent is the W3C trace-context request header
	// ("00-<trace>-<span>-01"); when a client (cmd/loadgen) sends one,
	// the server's request span joins the client's trace instead of
	// starting a fresh one.
	HeaderTraceparent = "traceparent"
)

// Admission scope names carried in HeaderAdmissionScope on a 429.
const (
	// ScopeTenant means the caller's own per-tenant bucket was full —
	// other tenants were unaffected by the overload.
	ScopeTenant = "tenant"
	// ScopeGlobal means the instance-wide bucket was full.
	ScopeGlobal = "global"
)

// Content types of the two curve response modes.
const (
	// ContentTypeJSON is every batched response body.
	ContentTypeJSON = "application/json"
	// ContentTypeNDJSON is the streaming curve mode: one CurveFrame per
	// line, analytical points first, then simulation points in
	// completion order, then exactly one terminal summary frame.
	ContentTypeNDJSON = "application/x-ndjson"
)

// Tier values carried in HeaderTier and the tier fields below. They
// mirror internal/model's Tier constants; the wire speaks strings.
const (
	// TierAnalytical marks an answer computed from the fitted closed
	// form in microseconds.
	TierAnalytical = "analytical"
	// TierSimulation marks an answer measured by a full simulation run
	// (possibly served from the runner's content-addressed cache).
	TierSimulation = "simulation"
)

// PredictRequest is the POST /v1/predict body. Unknown fields are
// rejected by the server so typos ("core" for "cores") fail loudly
// instead of being silently defaulted.
type PredictRequest struct {
	// Machine is a preset name (GET /v1/catalog lists them).
	Machine string `json:"machine"`
	// Program and Class select the workload.
	Program string `json:"program"`
	Class   string `json:"class"`
	// Cores is the number of active cores n; 0 means the whole machine.
	Cores int `json:"cores"`
	// Scale, when non-zero, must match the server's workload scale —
	// fidelity is an instance property, not a per-request knob (see
	// docs/API.md, "One scale per instance").
	Scale float64 `json:"scale,omitempty"`
}

// PredictResponse is the POST /v1/predict success body.
type PredictResponse struct {
	// Machine, Program, Class, Cores and Scale echo the resolved query
	// (Cores resolved: 0 in the request comes back as the machine's
	// total cores).
	Machine string  `json:"machine"`
	Program string  `json:"program"`
	Class   string  `json:"class"`
	Cores   int     `json:"cores"`
	Scale   float64 `json:"scale"`
	// Omega is ω(n) = (C(n) − C(1)) / C(1), the paper's equation (4).
	Omega float64 `json:"omega"`
	// Cycles is C(n); BaselineCycles is C(1); MakespanCycles is the
	// predicted wall-clock duration in cycles.
	Cycles         float64 `json:"cycles"`
	BaselineCycles float64 `json:"baseline_cycles"`
	MakespanCycles float64 `json:"makespan_cycles"`
	// MCUtilization has one entry per memory controller, in [0,1].
	MCUtilization []float64 `json:"mc_utilization"`
	// Tier is TierAnalytical or TierSimulation.
	Tier string `json:"tier"`
	// ConfigHash is the SHA-256 content address of the canonical run
	// coordinate (machine, program, class, cores, scale).
	ConfigHash string `json:"config_hash"`
	// Fit is the fit summary; analytical tier only.
	Fit *Fit `json:"fit,omitempty"`
}

// Fit summarizes the analytical model behind an analytical-tier answer.
type Fit struct {
	// Anchors are the core counts of the measurement plan the fit used.
	Anchors []int `json:"anchors"`
	// R2 is the goodness-of-fit of the single-socket 1/C(n) regression.
	R2 float64 `json:"r2"`
	// Residual is the fit's maximum relative error over its own anchors.
	Residual float64 `json:"residual"`
	// SaturationCores is the fitted μ/L: the core count at which the
	// modeled memory system saturates.
	SaturationCores float64 `json:"saturation_cores"`
}

// Error is every non-2xx response body.
type Error struct {
	Error string `json:"error"`
}

// CurveRequest is the POST /v1/curve body: one (machine, program,
// class) pair, many core counts, one response. Unknown fields are
// rejected.
type CurveRequest struct {
	// Machine is a preset name (GET /v1/catalog lists them).
	Machine string `json:"machine"`
	// Program and Class select the workload.
	Program string `json:"program"`
	Class   string `json:"class"`
	// Cores lists the active-core counts n to answer for, each in
	// 1..TotalCores, no duplicates. Empty or omitted means the full
	// sweep 1..TotalCores.
	Cores []int `json:"cores,omitempty"`
	// Scale, when non-zero, must match the server's workload scale.
	Scale float64 `json:"scale,omitempty"`
}

// CurvePoint is one ω(n) sample of a curve response. The numeric fields
// are byte-identical to what a single PredictRequest for the same
// coordinate would return (the equivalence test in internal/server pins
// this); the per-point fit summary is hoisted into CurveSummary since
// one fit covers the whole curve.
type CurvePoint struct {
	// Cores is the active-core count n of this sample.
	Cores int `json:"cores"`
	// Omega, Cycles, BaselineCycles, MakespanCycles and MCUtilization
	// mirror the PredictResponse fields.
	Omega          float64   `json:"omega"`
	Cycles         float64   `json:"cycles"`
	BaselineCycles float64   `json:"baseline_cycles"`
	MakespanCycles float64   `json:"makespan_cycles"`
	MCUtilization  []float64 `json:"mc_utilization"`
	// Tier is TierAnalytical or TierSimulation; empty when the point
	// was not answered (Error says why).
	Tier string `json:"tier,omitempty"`
	// ConfigHash is the content address of this point's coordinate.
	ConfigHash string `json:"config_hash,omitempty"`
	// Error reports a point that could not be answered: shed by
	// admission control, canceled, or failed. The numeric fields are
	// zero when Error is set.
	Error string `json:"error,omitempty"`
}

// CurveSummary is the terminal record of a curve response: in batched
// mode the summary field of CurveResponse, in streaming mode the last
// NDJSON frame.
type CurveSummary struct {
	// Points is the number of requested core counts; it always equals
	// Analytical + Simulation + Shed + Failed.
	Points int `json:"points"`
	// Analytical and Simulation count the points each tier answered.
	Analytical int `json:"analytical"`
	Simulation int `json:"simulation"`
	// Shed counts points rejected by simulation-tier admission control
	// (each simulation point is charged one admission token).
	Shed int `json:"shed,omitempty"`
	// Failed counts points whose simulation errored or was canceled.
	Failed int `json:"failed,omitempty"`
	// Fit is the fit summary behind the analytical points, when any.
	Fit *Fit `json:"fit,omitempty"`
}

// CurveResponse is the batched POST /v1/curve success body. Points come
// back in request order.
type CurveResponse struct {
	// Machine, Program, Class and Scale echo the resolved query.
	Machine string  `json:"machine"`
	Program string  `json:"program"`
	Class   string  `json:"class"`
	Scale   float64 `json:"scale"`
	// Points holds one CurvePoint per requested core count, in request
	// order.
	Points []CurvePoint `json:"points"`
	// Summary aggregates the curve (point counts per tier, fit stats).
	Summary CurveSummary `json:"summary"`
}

// CurveFrame is one line of the streaming (NDJSON) curve response.
// Exactly one field is set: Point for each sample as it becomes
// available (analytical points first — they cost microseconds — then
// simulation points in completion order), Summary exactly once as the
// terminal frame.
type CurveFrame struct {
	Point   *CurvePoint   `json:"point,omitempty"`
	Summary *CurveSummary `json:"summary,omitempty"`
}

// CatalogMachine is one machine entry of GET /v1/catalog.
type CatalogMachine struct {
	Name           string `json:"name"`
	Kind           string `json:"kind"`
	Sockets        int    `json:"sockets"`
	CoresPerSocket int    `json:"cores_per_socket"`
	TotalCores     int    `json:"total_cores"`
}

// CatalogProgram is one workload entry of GET /v1/catalog.
type CatalogProgram struct {
	Name        string   `json:"name"`
	Classes     []string `json:"classes"`
	Description string   `json:"description"`
}

// CatalogResponse is the GET /v1/catalog body.
type CatalogResponse struct {
	Scale    float64          `json:"scale"`
	Machines []CatalogMachine `json:"machines"`
	Programs []CatalogProgram `json:"programs"`
}

// HealthzResponse is the GET /healthz body. The latency quantiles are
// interpolated from the predict latency histogram and are 0 before the
// first request.
type HealthzResponse struct {
	Status       string  `json:"status"`
	Scale        float64 `json:"scale"`
	Fits         int     `json:"fits"`
	CachedRuns   int     `json:"cached_runs"`
	QueueDepth   int     `json:"queue_depth"`
	QueueCap     int     `json:"queue_cap"`
	TenantCap    int     `json:"tenant_cap"`
	Tenants      int     `json:"tenants"`
	PredictP50Ms float64 `json:"predict_p50_ms"`
	PredictP99Ms float64 `json:"predict_p99_ms"`
}
