// Package repro's root benchmarks regenerate every table and figure of the
// paper's evaluation (section V), one benchmark per artifact:
//
//	BenchmarkTableII          normalized cycle increase, W vs C, 3 machines
//	BenchmarkFig3             CG.C cycle/stall/work/miss series vs cores
//	BenchmarkTableIII         problem-size inventory
//	BenchmarkFig4             burstiness CCDFs for CG and x264
//	BenchmarkFig5             high-contention model validation (CG.C)
//	BenchmarkFig6             low-contention model validation (EP.C)
//	BenchmarkTableIV          1/C(n) linearity goodness-of-fit
//	BenchmarkAblationInputs   AMD heterogeneous vs homogeneous fit
//	BenchmarkAblationController  FCFS vs FR-FCFS memory scheduling
//	BenchmarkAblationClosedModel open M/M/1 vs closed-network baseline
//
// Benchmarks run the workloads at a reduced RefScale so `go test -bench=.`
// completes in minutes; run cmd/experiments with -scale 1 for full
// fidelity. Key result quantities are attached as custom benchmark metrics
// so regressions in the reproduced shapes are visible in benchmark diffs.
package repro

import (
	"context"
	"testing"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/machine"
	"repro/internal/workload"
)

// benchTune keeps benchmark runtime moderate while preserving every access
// pattern. The runner caches simulation runs, so b.N iterations beyond the
// first are nearly free.
var benchTune = workload.Tuning{RefScale: 0.15}

// BenchmarkFullRun is the end-to-end speed benchmark the repo's BENCH.json
// baseline tracks: the complete Fig. 3 sweep (CG.C, cores 1..8) on the
// 8-core UMA machine at quarter scale. Unlike the artifact benchmarks
// above it builds a fresh Runner every iteration, so b.N iterations
// re-simulate rather than hit the cache — ns/op is honest end-to-end
// simulation time. The events/sec metric is simulated-events-per-second,
// the throughput figure quoted in docs/ARCHITECTURE.md.
func BenchmarkFullRun(b *testing.B) {
	spec := machine.IntelUMA8()
	counts := experiments.FullSweepCounts(spec)
	var events uint64
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r := experiments.NewRunner(workload.Tuning{RefScale: 0.25})
		if _, err := r.Fig3(context.Background(), spec, counts); err != nil {
			b.Fatal(err)
		}
		// The sweep's runs are now cached: fold in their event counts.
		for _, n := range counts {
			res, err := r.Run(context.Background(), spec, "CG", workload.C, n)
			if err != nil {
				b.Fatal(err)
			}
			events += res.Events
		}
	}
	b.ReportMetric(float64(events)/b.Elapsed().Seconds(), "events/sec")
}

func BenchmarkTableII(b *testing.B) {
	r := experiments.NewRunner(benchTune)
	specs := machine.All()
	var d experiments.TableIIData
	var err error
	for i := 0; i < b.N; i++ {
		d, err = r.TableII(context.Background(), specs)
		if err != nil {
			b.Fatal(err)
		}
	}
	// Attach the headline cells: SP.C and CG.C at full cores per machine.
	for _, spec := range specs {
		if c, ok := d.Cell(spec.Name, "SP", workload.C, spec.TotalCores()); ok {
			b.ReportMetric(c.Omega, "omegaSP.C@"+spec.Name)
		}
		if c, ok := d.Cell(spec.Name, "CG", workload.C, spec.TotalCores()); ok {
			b.ReportMetric(c.Omega, "omegaCG.C@"+spec.Name)
		}
	}
}

func BenchmarkFig3(b *testing.B) {
	r := experiments.NewRunner(benchTune)
	for i := 0; i < b.N; i++ {
		for _, spec := range machine.All() {
			d, err := r.Fig3(context.Background(), spec, experiments.CoarseSweepCounts(spec, 6))
			if err != nil {
				b.Fatal(err)
			}
			// Work cycles must stay flat while total cycles grow — the
			// paper's observations 1 and 3.
			last := len(d.Total) - 1
			b.ReportMetric(d.Total[last]/d.Total[0], "totalGrowth@"+spec.Name)
			b.ReportMetric(d.Work[last]/d.Work[0], "workGrowth@"+spec.Name)
		}
	}
}

func BenchmarkTableIII(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.TableIII()
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 9 {
			b.Fatalf("rows = %d", len(rows))
		}
	}
}

func BenchmarkFig4(b *testing.B) {
	// Burstiness study on the paper's machine (Intel NUMA, all cores).
	r := experiments.NewRunner(benchTune)
	spec := machine.IntelNUMA24()
	var series []experiments.Fig4Series
	var err error
	for i := 0; i < b.N; i++ {
		series, err = r.Fig4(context.Background(), spec)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, s := range series {
		if s.Program == "CG" && (s.Class == workload.S || s.Class == workload.C) {
			b.ReportMetric(s.Analysis.NonEmptyFraction, "busyFrac.CG."+string(s.Class))
		}
	}
}

func benchmarkModelFig(b *testing.B, program string, class workload.Class) {
	r := experiments.NewRunner(benchTune)
	for i := 0; i < b.N; i++ {
		for _, spec := range machine.All() {
			fig, err := r.ModelVsMeasurement(context.Background(), spec, program, class,
				experiments.CoarseSweepCounts(spec, 6), core.Options{})
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(100*fig.Validation.MeanRelErr, "MRE%@"+spec.Name)
		}
	}
}

func BenchmarkFig5(b *testing.B) { benchmarkModelFig(b, "CG", workload.C) }

func BenchmarkFig6(b *testing.B) { benchmarkModelFig(b, "EP", workload.C) }

func BenchmarkTableIV(b *testing.B) {
	r := experiments.NewRunner(benchTune)
	specs := machine.All()
	var cells []experiments.TableIVCell
	var err error
	for i := 0; i < b.N; i++ {
		cells, err = r.TableIV(context.Background(), specs)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, c := range cells {
		if c.Program == "CG" || c.Program == "SP" {
			b.ReportMetric(c.R2, "R2."+c.Program+"@"+c.Machine)
		}
	}
}

func BenchmarkAblationInputs(b *testing.B) {
	r := experiments.NewRunner(benchTune)
	spec := machine.AMDNUMA48()
	var res experiments.AblationInputsResult
	var err error
	for i := 0; i < b.N; i++ {
		res, err = r.AblationInputs(context.Background(), spec, experiments.CoarseSweepCounts(spec, 6))
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(100*res.HeterogeneousMRE, "MRE%.full")
	b.ReportMetric(100*res.HomogeneousMRE, "MRE%.homogeneous")
}

func BenchmarkAblationController(b *testing.B) {
	r := experiments.NewRunner(benchTune)
	spec := machine.IntelNUMA24()
	var res experiments.AblationControllerResult
	var err error
	for i := 0; i < b.N; i++ {
		res, err = r.AblationController(context.Background(), spec)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.OmegaFCFS, "omega.fcfs")
	b.ReportMetric(res.OmegaFR, "omega.frfcfs")
}

func BenchmarkAblationClosedModel(b *testing.B) {
	r := experiments.NewRunner(benchTune)
	spec := machine.IntelNUMA24()
	var res experiments.AblationClosedResult
	var err error
	for i := 0; i < b.N; i++ {
		res, err = r.AblationClosedModel(context.Background(), spec, "CG", workload.C)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(100*res.OpenMRE, "MRE%.open")
	b.ReportMetric(100*res.ClosedMRE, "MRE%.closed")
}

func BenchmarkSpeedupStudy(b *testing.B) {
	r := experiments.NewRunner(benchTune)
	spec := machine.IntelNUMA24()
	var d experiments.SpeedupData
	var err error
	for i := 0; i < b.N; i++ {
		d, err = r.SpeedupStudy(context.Background(), spec, "CG", workload.C, experiments.CoarseSweepCounts(spec, 6))
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(d.OptimalCores), "optimalCores")
	b.ReportMetric(d.OptimalS, "optimalSpeedup")
}

func BenchmarkOversubscription(b *testing.B) {
	r := experiments.NewRunner(benchTune)
	spec := machine.IntelUMA8()
	for i := 0; i < b.N; i++ {
		if _, err := r.Oversubscription(context.Background(), spec, "CG", workload.C); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSensitivity(b *testing.B) {
	r := experiments.NewRunner(benchTune)
	spec := machine.IntelUMA8()
	var points []experiments.SensitivityPoint
	var err error
	for i := 0; i < b.N; i++ {
		points, err = r.Sensitivity(context.Background(), spec, "CG", workload.C)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, p := range points {
		if p.Label == "baseline" || p.Label == "channels+1" {
			b.ReportMetric(p.Omega, "omega."+p.Label)
		}
	}
}
