package repro

// End-to-end regression tests for the paper's qualitative claims, run at
// reduced scale on the cheapest machine so `go test` guards the
// reproduction itself, not just the components. The full-scale numbers live
// in EXPERIMENTS.md and regenerate via cmd/experiments.

import (
	"testing"

	"repro/internal/burst"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/machine"
	"repro/internal/workload"
)

// claimsTune keeps the suite fast; patterns are scale-invariant.
var claimsTune = workload.Tuning{RefScale: 0.1}

// TestClaimContentionGrowsWithCores: the paper's core observation (Table
// II, Fig. 3): for a large problem size, total cycles grow substantially
// with active cores, while work cycles and misses stay ~constant.
func TestClaimContentionGrowsWithCores(t *testing.T) {
	if testing.Short() {
		t.Skip("claims suite skipped in -short mode")
	}
	r := experiments.NewRunner(claimsTune)
	spec := machine.IntelUMA8()
	d, err := r.Fig3(spec, []int{1, 4, 8})
	if err != nil {
		t.Fatal(err)
	}
	if omega := d.Total[2]/d.Total[0] - 1; omega < 0.5 {
		t.Errorf("CG.C omega(8) = %.2f, want substantial growth", omega)
	}
	if workGrowth := d.Work[2] / d.Work[0]; workGrowth > 1.05 || workGrowth < 0.95 {
		t.Errorf("work cycles grew by %.2fx, want ~constant", workGrowth)
	}
	if missGrowth := d.Misses[2] / d.Misses[0]; missGrowth > 1.25 || missGrowth < 0.8 {
		t.Errorf("LLC misses grew by %.2fx, want ~constant", missGrowth)
	}
	// Growth is in the stalls: stall share must increase with cores.
	if d.Stall[2]/d.Total[2] <= d.Stall[0]/d.Total[0] {
		t.Error("stall share did not grow with cores")
	}
}

// TestClaimContentionSmoke is the -short variant of the claim above: one
// tiny end-to-end sweep (CG.C at 1 and 8 cores, RefScale 0.05) so even the
// short suite exercises the full stack — trace generation, caches,
// interconnect, memory controllers, event queue — with loose thresholds
// that only catch gross breakage.
func TestClaimContentionSmoke(t *testing.T) {
	r := experiments.NewRunner(workload.Tuning{RefScale: 0.05})
	d, err := r.Fig3(machine.IntelUMA8(), []int{1, 8})
	if err != nil {
		t.Fatal(err)
	}
	if omega := d.Total[1]/d.Total[0] - 1; omega < 0.2 {
		t.Errorf("CG.C omega(8) = %.2f, want visible contention even at smoke scale", omega)
	}
	if workGrowth := d.Work[1] / d.Work[0]; workGrowth > 1.10 || workGrowth < 0.90 {
		t.Errorf("work cycles grew by %.2fx, want ~constant", workGrowth)
	}
}

// TestClaimSizeControlsContention: W sizes contend far less than C sizes
// for the memory-bound dwarfs (Table II's small-vs-large contrast).
func TestClaimSizeControlsContention(t *testing.T) {
	if testing.Short() {
		t.Skip("claims suite skipped in -short mode")
	}
	r := experiments.NewRunner(claimsTune)
	spec := machine.IntelUMA8()
	omega := func(program string, class workload.Class) float64 {
		base, err := r.Run(spec, program, class, 1)
		if err != nil {
			t.Fatal(err)
		}
		full, err := r.Run(spec, program, class, 8)
		if err != nil {
			t.Fatal(err)
		}
		return core.Omega(float64(full.TotalCycles), float64(base.TotalCycles))
	}
	for _, prog := range []string{"CG", "SP"} {
		small, large := omega(prog, workload.W), omega(prog, workload.C)
		if large < small+0.3 {
			t.Errorf("%s: omega W=%.2f vs C=%.2f — large size should contend much more", prog, small, large)
		}
	}
}

// TestClaimContentionOrdering: SP tops the contention ranking and EP is
// near zero (Table II row structure).
func TestClaimContentionOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("claims suite skipped in -short mode")
	}
	r := experiments.NewRunner(claimsTune)
	spec := machine.IntelUMA8()
	omega := map[string]float64{}
	for _, prog := range []string{"EP", "CG", "SP"} {
		base, err := r.Run(spec, prog, workload.C, 1)
		if err != nil {
			t.Fatal(err)
		}
		full, err := r.Run(spec, prog, workload.C, 8)
		if err != nil {
			t.Fatal(err)
		}
		omega[prog] = core.Omega(float64(full.TotalCycles), float64(base.TotalCycles))
	}
	if !(omega["SP"] > omega["CG"]) {
		t.Errorf("SP (%.2f) should top CG (%.2f)", omega["SP"], omega["CG"])
	}
	if omega["EP"] > 0.2 {
		t.Errorf("EP omega = %.2f, want ~0", omega["EP"])
	}
}

// TestClaimBurstinessDependsOnSize: the paper's Fig. 4 observation — the
// small problem size is bursty, the large one is not.
func TestClaimBurstinessDependsOnSize(t *testing.T) {
	if testing.Short() {
		t.Skip("claims suite skipped in -short mode")
	}
	// Full iteration counts are needed for burst statistics; CG.S and CG.C
	// stay affordable on the UMA machine.
	r := experiments.NewRunner(workload.Tuning{RefScale: 0.5})
	series, err := r.Fig4(machine.IntelUMA8())
	if err != nil {
		t.Fatal(err)
	}
	byClass := map[workload.Class]experiments.Fig4Series{}
	for _, s := range series {
		if s.Program == "CG" {
			byClass[s.Class] = s
		}
	}
	if v := byClass[workload.S].Verdict; v != burst.Bursty {
		t.Errorf("CG.S verdict = %v (busy %.1f%%), want bursty",
			v, 100*byClass[workload.S].Analysis.NonEmptyFraction)
	}
	if v := byClass[workload.C].Verdict; v != burst.NonBursty {
		t.Errorf("CG.C verdict = %v (busy %.1f%%), want non-bursty",
			v, 100*byClass[workload.C].Analysis.NonEmptyFraction)
	}
	// Busy fraction must rise monotonically from S to C at the endpoints.
	if byClass[workload.S].Analysis.NonEmptyFraction >= byClass[workload.C].Analysis.NonEmptyFraction {
		t.Error("busy-window fraction should grow with problem size")
	}
}

// TestClaimModelAccuracy: the analytical model fitted from the paper's
// input plan tracks the measured contention within the paper's error band
// (5-14%, allowing some slack at reduced scale).
func TestClaimModelAccuracy(t *testing.T) {
	if testing.Short() {
		t.Skip("claims suite skipped in -short mode")
	}
	r := experiments.NewRunner(claimsTune)
	spec := machine.IntelUMA8()
	fig, err := r.Fig5(spec, []int{1, 2, 3, 4, 5, 6, 7, 8})
	if err != nil {
		t.Fatal(err)
	}
	if fig.Validation.MeanRelErr > 0.20 {
		t.Errorf("model MRE = %.1f%%, want within ~the paper's band",
			100*fig.Validation.MeanRelErr)
	}
}

// TestClaimLinearityForContendedPrograms: Table IV — 1/C(n) is nearly
// linear for the high-contention program, less so for EP.
func TestClaimLinearityForContendedPrograms(t *testing.T) {
	r := experiments.NewRunner(claimsTune)
	spec := machine.IntelUMA8()
	r2 := func(program string) float64 {
		meas, err := r.Sweep(spec, program, workload.C, []int{1, 2, 3, 4})
		if err != nil {
			t.Fatal(err)
		}
		v, err := core.LinearityR2(meas)
		if err != nil {
			t.Fatal(err)
		}
		return v
	}
	if sp := r2("SP"); sp < 0.9 {
		t.Errorf("SP.C linearity R2 = %.2f, want >= 0.9", sp)
	}
}

// TestClaimMoreControllersReduceContention: the paper's conclusion that
// added memory controllers relieve contention: interleaving CG.C across
// both UMA-socket buses... the cleanest check is the custom-machine one:
// doubling MC channels lowers omega.
func TestClaimMoreBandwidthReducesContention(t *testing.T) {
	r := experiments.NewRunner(claimsTune)
	narrow := machine.IntelUMA8()
	wide := machine.IntelUMA8()
	wide.Name = "IntelUMA8wide"
	wide.MC.Channels = 4
	omega := func(spec machine.Spec) float64 {
		base, err := r.Run(spec, "SP", workload.C, 1)
		if err != nil {
			t.Fatal(err)
		}
		full, err := r.Run(spec, "SP", workload.C, 8)
		if err != nil {
			t.Fatal(err)
		}
		return core.Omega(float64(full.TotalCycles), float64(base.TotalCycles))
	}
	if on, ow := omega(narrow), omega(wide); ow >= on {
		t.Errorf("wide machine omega %.2f should be below narrow %.2f", ow, on)
	}
}
