package repro

// End-to-end regression tests for the paper's qualitative claims, run at
// reduced scale on the cheapest machine so `go test` guards the
// reproduction itself, not just the components. The full-scale numbers live
// in EXPERIMENTS.md and regenerate via cmd/experiments.

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"repro/internal/burst"
	"repro/internal/core"
	"repro/internal/eventq"
	"repro/internal/experiments"
	"repro/internal/machine"
	"repro/internal/memctrl"
	"repro/internal/mmq"
	"repro/internal/telemetry"
	"repro/internal/workload"
)

// claimsTune keeps the suite fast; patterns are scale-invariant.
var claimsTune = workload.Tuning{RefScale: 0.1}

// TestClaimContentionGrowsWithCores: the paper's core observation (Table
// II, Fig. 3): for a large problem size, total cycles grow substantially
// with active cores, while work cycles and misses stay ~constant.
func TestClaimContentionGrowsWithCores(t *testing.T) {
	if testing.Short() {
		t.Skip("claims suite skipped in -short mode")
	}
	r := experiments.NewRunner(claimsTune)
	spec := machine.IntelUMA8()
	d, err := r.Fig3(context.Background(), spec, []int{1, 4, 8})
	if err != nil {
		t.Fatal(err)
	}
	if omega := d.Total[2]/d.Total[0] - 1; omega < 0.5 {
		t.Errorf("CG.C omega(8) = %.2f, want substantial growth", omega)
	}
	if workGrowth := d.Work[2] / d.Work[0]; workGrowth > 1.05 || workGrowth < 0.95 {
		t.Errorf("work cycles grew by %.2fx, want ~constant", workGrowth)
	}
	if missGrowth := d.Misses[2] / d.Misses[0]; missGrowth > 1.25 || missGrowth < 0.8 {
		t.Errorf("LLC misses grew by %.2fx, want ~constant", missGrowth)
	}
	// Growth is in the stalls: stall share must increase with cores.
	if d.Stall[2]/d.Total[2] <= d.Stall[0]/d.Total[0] {
		t.Error("stall share did not grow with cores")
	}
}

// TestClaimContentionSmoke is the -short variant of the claim above: one
// tiny end-to-end sweep (CG.C at 1 and 8 cores, RefScale 0.05) so even the
// short suite exercises the full stack — trace generation, caches,
// interconnect, memory controllers, event queue — with loose thresholds
// that only catch gross breakage.
func TestClaimContentionSmoke(t *testing.T) {
	r := experiments.NewRunner(workload.Tuning{RefScale: 0.05})
	d, err := r.Fig3(context.Background(), machine.IntelUMA8(), []int{1, 8})
	if err != nil {
		t.Fatal(err)
	}
	if omega := d.Total[1]/d.Total[0] - 1; omega < 0.2 {
		t.Errorf("CG.C omega(8) = %.2f, want visible contention even at smoke scale", omega)
	}
	if workGrowth := d.Work[1] / d.Work[0]; workGrowth > 1.10 || workGrowth < 0.90 {
		t.Errorf("work cycles grew by %.2fx, want ~constant", workGrowth)
	}
}

// TestClaimSizeControlsContention: W sizes contend far less than C sizes
// for the memory-bound dwarfs (Table II's small-vs-large contrast).
func TestClaimSizeControlsContention(t *testing.T) {
	if testing.Short() {
		t.Skip("claims suite skipped in -short mode")
	}
	r := experiments.NewRunner(claimsTune)
	spec := machine.IntelUMA8()
	omega := func(program string, class workload.Class) float64 {
		base, err := r.Run(context.Background(), spec, program, class, 1)
		if err != nil {
			t.Fatal(err)
		}
		full, err := r.Run(context.Background(), spec, program, class, 8)
		if err != nil {
			t.Fatal(err)
		}
		return core.Omega(float64(full.TotalCycles), float64(base.TotalCycles))
	}
	for _, prog := range []string{"CG", "SP"} {
		small, large := omega(prog, workload.W), omega(prog, workload.C)
		if large < small+0.3 {
			t.Errorf("%s: omega W=%.2f vs C=%.2f — large size should contend much more", prog, small, large)
		}
	}
}

// TestClaimContentionOrdering: SP tops the contention ranking and EP is
// near zero (Table II row structure).
func TestClaimContentionOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("claims suite skipped in -short mode")
	}
	r := experiments.NewRunner(claimsTune)
	spec := machine.IntelUMA8()
	omega := map[string]float64{}
	for _, prog := range []string{"EP", "CG", "SP"} {
		base, err := r.Run(context.Background(), spec, prog, workload.C, 1)
		if err != nil {
			t.Fatal(err)
		}
		full, err := r.Run(context.Background(), spec, prog, workload.C, 8)
		if err != nil {
			t.Fatal(err)
		}
		omega[prog] = core.Omega(float64(full.TotalCycles), float64(base.TotalCycles))
	}
	if !(omega["SP"] > omega["CG"]) {
		t.Errorf("SP (%.2f) should top CG (%.2f)", omega["SP"], omega["CG"])
	}
	if omega["EP"] > 0.2 {
		t.Errorf("EP omega = %.2f, want ~0", omega["EP"])
	}
}

// TestClaimBurstinessDependsOnSize: the paper's Fig. 4 observation — the
// small problem size is bursty, the large one is not.
func TestClaimBurstinessDependsOnSize(t *testing.T) {
	if testing.Short() {
		t.Skip("claims suite skipped in -short mode")
	}
	// Full iteration counts are needed for burst statistics; CG.S and CG.C
	// stay affordable on the UMA machine.
	r := experiments.NewRunner(workload.Tuning{RefScale: 0.5})
	series, err := r.Fig4(context.Background(), machine.IntelUMA8())
	if err != nil {
		t.Fatal(err)
	}
	byClass := map[workload.Class]experiments.Fig4Series{}
	for _, s := range series {
		if s.Program == "CG" {
			byClass[s.Class] = s
		}
	}
	if v := byClass[workload.S].Verdict; v != burst.Bursty {
		t.Errorf("CG.S verdict = %v (busy %.1f%%), want bursty",
			v, 100*byClass[workload.S].Analysis.NonEmptyFraction)
	}
	if v := byClass[workload.C].Verdict; v != burst.NonBursty {
		t.Errorf("CG.C verdict = %v (busy %.1f%%), want non-bursty",
			v, 100*byClass[workload.C].Analysis.NonEmptyFraction)
	}
	// Busy fraction must rise monotonically from S to C at the endpoints.
	if byClass[workload.S].Analysis.NonEmptyFraction >= byClass[workload.C].Analysis.NonEmptyFraction {
		t.Error("busy-window fraction should grow with problem size")
	}
}

// TestClaimMM1QueueOccupancy validates the paper's queueing-theoretic
// backbone (section IV) with the telemetry sampler as the measuring
// instrument: a memory controller driven by Poisson arrivals shows a mean
// number-in-system matching the M/M/1 prediction rho/(1-rho).
//
// The controller's service is deterministic per row outcome, so a pure
// arrival stream would be M/D/1 (about 25-35% below M/M/1 at these
// loads). Instead the addresses mix row hits (20 cycles) and misses (120
// cycles) at P(hit)=0.85, giving ES=35 and ES2=2500, i.e. squared
// coefficient of variation 1.04 — an M/G/1 within ~2% of M/M/1, close
// enough to verify the rho/(1-rho) shape at several loads.
func TestClaimMM1QueueOccupancy(t *testing.T) {
	if testing.Short() {
		t.Skip("claims suite skipped in -short mode")
	}
	const (
		hitLat  = 20
		missLat = 120
		pHit    = 0.85
		rowSize = 1 << 20
		meanSvc = pHit*hitLat + (1-pHit)*missLat // 35 cycles
		horizon = 3_000_000
		sample  = 100
		warmup  = horizon / 10
	)
	for _, rho := range []float64{0.3, 0.5, 0.7} {
		q := eventq.New(eventq.Calendar)
		mc, err := memctrl.New(memctrl.Config{
			Name: "mm1", Channels: 1, Banks: 1,
			RowBytes: rowSize, LineBytes: 64,
			HitLatency: hitLat, MissLatency: missLat,
			Discipline: memctrl.FCFS,
		}, q)
		if err != nil {
			t.Fatal(err)
		}

		// Open-loop Poisson arrivals at lambda = rho/ES. With one channel,
		// one bank and FCFS, service order equals arrival order, so the
		// generated hit/miss sequence is served exactly as drawn.
		rng := rand.New(rand.NewSource(7))
		lambda := rho / meanSvc
		row := uint64(0)
		done := func(bool) {}
		var arrive func()
		arrive = func() {
			if q.Now() >= horizon {
				return
			}
			if rng.Float64() >= pHit {
				row++ // row-buffer miss: move to a fresh DRAM row
			}
			if err := mc.Submit(row*rowSize, done); err != nil {
				t.Error(err)
			}
			gap := uint64(rng.ExpFloat64()/lambda) + 1
			q.After(gap, arrive)
		}
		q.After(1, arrive)

		// The sampler: the same instantaneous-occupancy probe the
		// in-simulator telemetry records, on the same time-series type.
		occ := telemetry.NewTimeSeries("occupancy", "requests", horizon/sample)
		var probe func()
		probe = func() {
			if q.Now() >= horizon {
				return
			}
			if q.Now() > warmup {
				occ.Append(q.Now(), float64(mc.Occupancy()))
			}
			q.After(sample, probe)
		}
		q.After(sample, probe)
		q.Run()

		// Predict from the measured utilization, so arrival-rate rounding
		// cannot bias the comparison.
		rhoMeasured := mc.Stats().Utilization(horizon, 1)
		model := mmq.MM1{Lambda: rhoMeasured, Mu: 1}
		want, err := model.QueueLength()
		if err != nil {
			t.Fatal(err)
		}
		got := occ.Mean()
		if relErr := math.Abs(got-want) / want; relErr > 0.20 {
			t.Errorf("rho=%.1f (measured %.3f): sampled occupancy %.3f vs M/M/1 %.3f (%.0f%% off, want within 20%%)",
				rho, rhoMeasured, got, want, 100*relErr)
		}
	}
}

// TestClaimModelAccuracy: the analytical model fitted from the paper's
// input plan tracks the measured contention within the paper's error band
// (5-14%, allowing some slack at reduced scale).
func TestClaimModelAccuracy(t *testing.T) {
	if testing.Short() {
		t.Skip("claims suite skipped in -short mode")
	}
	r := experiments.NewRunner(claimsTune)
	spec := machine.IntelUMA8()
	fig, err := r.Fig5(context.Background(), spec, []int{1, 2, 3, 4, 5, 6, 7, 8})
	if err != nil {
		t.Fatal(err)
	}
	if fig.Validation.MeanRelErr > 0.20 {
		t.Errorf("model MRE = %.1f%%, want within ~the paper's band",
			100*fig.Validation.MeanRelErr)
	}
}

// TestClaimLinearityForContendedPrograms: Table IV — 1/C(n) is nearly
// linear for the high-contention program, less so for EP.
func TestClaimLinearityForContendedPrograms(t *testing.T) {
	r := experiments.NewRunner(claimsTune)
	spec := machine.IntelUMA8()
	r2 := func(program string) float64 {
		meas, err := r.Sweep(context.Background(), spec, program, workload.C, []int{1, 2, 3, 4})
		if err != nil {
			t.Fatal(err)
		}
		v, err := core.LinearityR2(meas)
		if err != nil {
			t.Fatal(err)
		}
		return v
	}
	if sp := r2("SP"); sp < 0.9 {
		t.Errorf("SP.C linearity R2 = %.2f, want >= 0.9", sp)
	}
}

// TestClaimMoreControllersReduceContention: the paper's conclusion that
// added memory controllers relieve contention: interleaving CG.C across
// both UMA-socket buses... the cleanest check is the custom-machine one:
// doubling MC channels lowers omega.
func TestClaimMoreBandwidthReducesContention(t *testing.T) {
	r := experiments.NewRunner(claimsTune)
	narrow := machine.IntelUMA8()
	wide := machine.IntelUMA8()
	wide.Name = "IntelUMA8wide"
	wide.MC.Channels = 4
	omega := func(spec machine.Spec) float64 {
		base, err := r.Run(context.Background(), spec, "SP", workload.C, 1)
		if err != nil {
			t.Fatal(err)
		}
		full, err := r.Run(context.Background(), spec, "SP", workload.C, 8)
		if err != nil {
			t.Fatal(err)
		}
		return core.Omega(float64(full.TotalCycles), float64(base.TotalCycles))
	}
	if on, ow := omega(narrow), omega(wide); ow >= on {
		t.Errorf("wide machine omega %.2f should be below narrow %.2f", ow, on)
	}
}
